"""Tests for the scheduling passes: conversion, fill fusion, scalar
replacement, unroll-and-jam (paper Section 3.4, Table 3 stages)."""

import pytest

from repro import kernels
from repro.dialects import linalg, memref_stream
from repro.ir import FloatAttr, verify
from repro.transforms.convert_linalg_to_memref_stream import (
    ConvertLinalgToMemrefStreamPass,
)
from repro.transforms.fuse_fill import FuseFillPass, fill_constant
from repro.transforms.scalar_replacement import (
    ScalarReplacementPass,
    can_scalar_replace,
)
from repro.transforms.unroll_and_jam import (
    MAX_FACTOR,
    NO_UNROLL,
    UnrollAndJamPass,
    legal_unroll_factors,
    select_unroll_dim,
    select_unroll_factor,
    unroll_dim_candidates,
)


def _generics(module):
    return [
        op
        for op in module.walk()
        if isinstance(op, memref_stream.GenericOp)
    ]


def convert(module):
    ConvertLinalgToMemrefStreamPass().run(module)
    verify(module)
    return module


class TestConvertLinalg:
    def test_no_linalg_remains(self):
        module, _ = kernels.matmul(2, 4, 6)
        convert(module)
        assert not any(
            isinstance(op, (linalg.GenericOp, linalg.FillOp))
            for op in module.walk()
        )

    def test_bounds_explicit(self):
        module, _ = kernels.matmul(2, 4, 6)
        convert(module)
        # fill generic + matmul generic
        fills, mm = _generics(module)
        assert mm.bounds == (2, 6, 4)

    def test_canonical_dim_order(self):
        module, _ = kernels.conv3x3(4, 4)
        convert(module)
        conv = _generics(module)[-1]
        kinds = conv.iterator_types
        first_reduction = kinds.index("reduction")
        assert all(k == "reduction" for k in kinds[first_reduction:])

    def test_fill_becomes_parallel_generic(self):
        module, _ = kernels.fill(2, 3)
        convert(module)
        (g,) = _generics(module)
        assert g.iterator_types == ["parallel", "parallel"]
        assert not g.inputs


class TestFuseFill:
    def _converted_matmul(self):
        module, _ = kernels.matmul(1, 8, 4)
        convert(module)
        return module

    def test_fill_constant_detection(self):
        module = self._converted_matmul()
        fill_generic = _generics(module)[0]
        constant = fill_constant(fill_generic)
        assert isinstance(constant, FloatAttr)
        assert constant.value == 0.0

    def test_fusion_removes_fill(self):
        module = self._converted_matmul()
        FuseFillPass().run(module)
        generics = _generics(module)
        assert len(generics) == 1
        (init,) = generics[0].inits
        assert isinstance(init, FloatAttr) and init.value == 0.0

    def test_elementwise_not_fused(self):
        module, _ = kernels.sum_kernel(2, 2)
        convert(module)
        FuseFillPass().run(module)
        assert len(_generics(module)) == 1  # unchanged

    def test_pool_neutral_fused(self):
        module, _ = kernels.max_pool3x3(2, 4)
        convert(module)
        FuseFillPass().run(module)
        (g,) = _generics(module)
        (init,) = g.inits
        assert init.value == kernels.POOL_NEUTRAL_MIN


class TestScalarReplacement:
    def _matmul_generic(self):
        module, _ = kernels.matmul(1, 8, 4)
        convert(module)
        FuseFillPass().run(module)
        return module, _generics(module)[0]

    def test_applicability(self):
        module, g = self._matmul_generic()
        assert can_scalar_replace(g)

    def test_output_map_compressed(self):
        module, g = self._matmul_generic()
        ScalarReplacementPass().run(module)
        verify(module)
        assert g.is_scalar_replaced
        out_map = g.indexing_maps[-1]
        assert out_map.num_dims == len(g.parallel_dims)

    def test_idempotent(self):
        module, g = self._matmul_generic()
        ScalarReplacementPass().run(module)
        maps_before = g.indexing_maps
        ScalarReplacementPass().run(module)
        assert g.indexing_maps == maps_before

    def test_not_applicable_without_reduction(self):
        module, _ = kernels.sum_kernel(2, 2)
        convert(module)
        (g,) = _generics(module)
        assert not can_scalar_replace(g)


class TestUnrollAndJam:
    def test_factor_selection(self):
        """Paper: at least four to hide the 3-stage FPU pipeline."""
        assert select_unroll_factor(20) == 4
        assert select_unroll_factor(5) == 5  # smallest divisor >= 4
        assert select_unroll_factor(8) == 4
        assert select_unroll_factor(12) == 4
        assert select_unroll_factor(4) == 4  # full unroll of tiny dims
        assert select_unroll_factor(3) == 3
        assert select_unroll_factor(9) == 3  # fall back below four
        assert select_unroll_factor(7) == 7
        assert select_unroll_factor(11) == 1  # prime, nothing fits

    def _scheduled_matmul(self, m=1, k=200, n=5):
        module, _ = kernels.matmul(m, k, n)
        convert(module)
        FuseFillPass().run(module)
        ScalarReplacementPass().run(module)
        return module, _generics(module)[0]

    def test_unroll_dim_is_output_varying(self):
        module, g = self._scheduled_matmul()
        dim = select_unroll_dim(g)
        assert g.iterator_types[dim] == "parallel"
        assert dim == 1  # the N dimension

    def test_interleaved_dim_appended(self):
        """Paper Fig 7: matvec becomes bounds [1, 200, 5] with an
        interleaved innermost dim (here [1, 1, 200, 5])."""
        module, g = self._scheduled_matmul()
        UnrollAndJamPass().run(module)
        verify(module)
        assert g.iterator_types[-1] == "interleaved"
        assert g.bounds == (1, 1, 200, 5)
        assert g.interleave_factor == 5

    def test_body_replicated_grouped_by_operand(self):
        module, g = self._scheduled_matmul()
        UnrollAndJamPass().run(module)
        block = g.body_block
        # 3 operands x factor 5 block args; 5 muls + 5 adds + yield.
        assert len(block.args) == 15
        mul_count = sum(
            1 for op in block.ops if op.name == "arith.mulf"
        )
        assert mul_count == 5
        assert len(block.last_op.operands) == 5

    def test_prime_bounds_fall_back_explicitly(self):
        """Divisor-free bounds (primes > MAX_FACTOR) must select
        NO_UNROLL — the pass has no remainder loop, so this is the
        contract the tuner's legality model builds on."""
        for prime in (11, 13, 17, 19, 23, 101):
            assert prime > MAX_FACTOR
            assert select_unroll_factor(prime) == NO_UNROLL == 1

    def test_selected_factor_is_always_legal(self):
        """Whatever the heuristic picks divides the bound exactly."""
        for bound in range(1, 65):
            factor = select_unroll_factor(bound)
            assert bound % factor == 0
            if factor > 1 and bound > MAX_FACTOR:
                assert factor in legal_unroll_factors(bound)

    def test_legal_unroll_factors(self):
        assert legal_unroll_factors(12) == [2, 3, 4, 6]
        assert legal_unroll_factors(8) == [2, 4, 8]
        assert legal_unroll_factors(11) == []  # prime > MAX_FACTOR
        assert legal_unroll_factors(1) == []

    def test_prime_bound_leaves_op_untouched(self):
        module, g = self._scheduled_matmul(1, 16, 11)
        UnrollAndJamPass().run(module)
        assert g.interleave_factor == 1  # explicit no-unroll fallback

    def test_explicit_factor(self):
        module, g = self._scheduled_matmul(1, 16, 8)
        UnrollAndJamPass(factor=2).run(module)
        assert g.interleave_factor == 2

    def test_explicit_dim_option(self):
        """dim= picks the interleave dim; an illegal dim is skipped."""
        module, g = self._scheduled_matmul(4, 16, 8)
        assert unroll_dim_candidates(g) == [0, 1]
        UnrollAndJamPass(factor=2, dim=0).run(module)
        verify(module)
        assert g.interleave_factor == 2
        # The outer (M) dim was split: 4 -> 2 with factor 2 appended.
        assert g.bounds == (2, 8, 16, 2)

    def test_illegal_dim_option_degrades_to_no_unroll(self):
        module, g = self._scheduled_matmul(4, 16, 8)
        UnrollAndJamPass(factor=2, dim=2).run(module)  # a reduction dim
        assert g.interleave_factor == 1

    def test_nondividing_factor_degrades_to_no_unroll(self):
        module, g = self._scheduled_matmul(1, 16, 8)
        UnrollAndJamPass(factor=3).run(module)
        assert g.interleave_factor == 1

    def test_factor_one_leaves_op_untouched(self):
        """An explicit factor of 1 (or dim= hitting the NO_UNROLL
        heuristic) must not rewrite the op into a degenerate factor-1
        interleave — that would block a later interchange."""
        module, g = self._scheduled_matmul(1, 16, 8)
        UnrollAndJamPass(factor=1).run(module)
        assert "interleaved" not in g.iterator_types
        assert g.bounds == (1, 8, 16)

    def test_dim_option_with_prime_bound_leaves_op_untouched(self):
        module, g = self._scheduled_matmul(11, 4, 4)
        UnrollAndJamPass(dim=0).run(module)  # bound 11 -> NO_UNROLL
        assert "interleaved" not in g.iterator_types
        assert g.bounds == (11, 4, 4)

    def test_elementwise_untouched(self):
        module, _ = kernels.relu(4, 4)
        convert(module)
        (g,) = _generics(module)
        UnrollAndJamPass().run(module)
        assert g.interleave_factor == 1
