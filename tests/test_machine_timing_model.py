"""Focused tests of the cycle model's architectural behaviours —
each one corresponds to a performance effect the paper measures."""

import numpy as np
import pytest

from repro.snitch import SnitchMachine, TCDM, assemble
from repro.snitch.isa import scfg_address
from repro.snitch.machine import (
    BRANCH_TAKEN_PENALTY,
    FP_LATENCY,
    INT_LOAD_LATENCY,
)


def run(asm, int_args=None, float_args=None, memory=None):
    program = assemble("main:\n" + asm + "\nret")
    machine = SnitchMachine(program, memory)
    trace = machine.run("main", int_args=int_args, float_args=float_args)
    return machine, trace


class TestIssueModel:
    def test_fp_dispatch_costs_one_int_cycle(self):
        """Every FP instruction passes through the integer issue port —
        the mechanism that throttles the explicit-load baselines."""
        _, only_int = run("li t0, 1\nli t1, 2")
        _, with_fp = run("li t0, 1\nfadd.d fa0, fa1, fa2\nli t1, 2")
        assert with_fp.cycles >= only_int.cycles + 1

    def test_independent_fp_ops_pipeline(self):
        body = "\n".join(
            f"fadd.d fa{i}, fa6, fa7" for i in range(5)
        )
        _, trace = run(body, float_args={"fa6": 1.0, "fa7": 2.0})
        # 5 independent adds issue back to back: ~1 per cycle.
        assert trace.fpu_arith_cycles == 5
        assert trace.fpu_stall_cycles == 0

    def test_load_use_stall(self):
        mem = TCDM()
        addr = mem.allocate(8)
        mem.store_u32(addr, 7)
        _, dependent = run(
            f"li t0, {addr}\nlw t1, 0(t0)\nadd t2, t1, t1",
            memory=mem,
        )
        mem2 = TCDM()
        addr2 = mem2.allocate(8)
        _, independent = run(
            f"li t0, {addr2}\nlw t1, 0(t0)\nli t3, 1\nadd t2, t3, t3",
            memory=mem2,
        )
        # The dependent add waits for the load-use latency:
        # li(1) + lw(1) + stall until data is ready + add(1).
        assert dependent.cycles == 2 + INT_LOAD_LATENCY
        assert dependent.cycles > independent.cycles - 1

    def test_mul_latency(self):
        _, chained = run("li t0, 3\nmul t1, t0, t0\nadd t2, t1, t1")
        _, unchained = run("li t0, 3\nmul t1, t0, t0\nadd t2, t0, t0")
        assert chained.cycles > unchained.cycles


class TestFrepModel:
    def test_frep_throughput_one_per_cycle(self):
        """Independent FREP bodies sustain one FP op per cycle — the
        mechanism behind the paper's ~100% utilization claims."""
        asm = """
            li t0, 99
            frep.o t0, 2, 0, 0
            fadd.d fa0, fa2, fa3
            fadd.d fa1, fa2, fa3
        """
        _, trace = run(asm, float_args={"fa2": 1.0, "fa3": 2.0})
        assert trace.fpu_arith_cycles == 200
        assert trace.cycles <= 205

    def test_frep_accumulator_chain_stalls(self):
        """A single-accumulator FREP body is latency-bound at
        1/FP_LATENCY — why unroll-and-jam exists."""
        asm = """
            li t0, 99
            frep.o t0, 1, 0, 0
            fadd.d fa0, fa0, fa1
        """
        _, trace = run(asm, float_args={"fa1": 1.0})
        assert trace.cycles >= 99 * FP_LATENCY
        assert trace.fpu_utilization <= 1 / FP_LATENCY + 0.01

    def test_four_accumulators_hide_latency(self):
        body = "\n".join(
            f"fadd.d fa{i}, fa{i}, fa4" for i in range(4)
        )
        asm = f"li t0, 99\nfrep.o t0, 4, 0, 0\n{body}"
        _, trace = run(asm, float_args={"fa4": 1.0})
        assert trace.fpu_utilization > 0.95

    def test_nested_int_code_after_frep_overlaps(self):
        asm = """
            li t0, 49
            frep.o t0, 1, 0, 0
            fmadd.d fa0, fa1, fa2, fa0
            li t1, 1
            li t2, 2
            li t3, 3
            li t4, 4
        """
        _, trace = run(
            asm, float_args={"fa1": 1.0, "fa2": 1.0, "fa0": 0.0}
        )
        # integer tail fully hidden under the ~50x4-cycle FPU chain
        assert trace.cycles <= 50 * FP_LATENCY
        assert trace.cycles >= 49 * FP_LATENCY


class TestStreamingSync:
    def test_csrci_waits_for_fpu_drain(self):
        mem = TCDM()
        base = mem.allocate(8 * 8)
        mem.write_array(base, np.arange(8, dtype=np.float64))
        asm = f"""
            li t0, 7
            scfgwi t0, {scfg_address(0, 0)}
            li t1, 8
            scfgwi t1, {scfg_address(0, 8)}
            li t1, 0
            scfgwi t1, {scfg_address(0, 16)}
            scfgwi a0, {scfg_address(0, 24)}
            csrsi ssrcfg, 1
            li t2, 7
            frep.o t2, 1, 0, 0
            fadd.d fa0, fa0, ft0
            csrci ssrcfg, 1
            li t3, 1
        """
        machine, trace = run(asm, int_args={"a0": base}, memory=mem)
        # The final li executes only after the FPU drained all 8 adds
        # (chained: 8 * FP_LATENCY cycles).
        assert trace.cycles >= 8 * FP_LATENCY

    def test_branch_penalty_accumulates(self):
        loop = """
            li t0, 10
        head:
            addi t0, t0, -1
            bnez t0, head
        """
        _, trace = run(loop)
        straight = 1 + 10 * 2  # li + 10x (addi + bnez)
        assert trace.cycles == straight + 9 * BRANCH_TAKEN_PENALTY


class TestMemoryEffects:
    def test_flw_fsw_single_precision(self):
        mem = TCDM()
        addr = mem.allocate(8)
        mem.store_f32(addr, 2.5)
        machine, _ = run(
            f"li t0, {addr}\nflw fa0, 0(t0)\nfsw fa0, 4(t0)",
            memory=mem,
        )
        assert mem.load_f32(addr + 4) == 2.5

    def test_stores_count_in_trace(self):
        mem = TCDM()
        addr = mem.allocate(16)
        _, trace = run(
            f"li t0, {addr}\nfsd fa0, 0(t0)\nsw t0, 8(t0)",
            float_args={"fa0": 1.0},
            memory=mem,
        )
        assert trace.stores == 2
