"""Tests for the multi-level spill-free register allocator (Section 3.3)."""

import pytest

from repro.backend.register_allocator import (
    RegisterAllocator,
    RegisterPressureError,
    allocate_registers,
    count_used_registers,
)
from repro.backend.registers import SNITCH_STREAM_REGISTERS
from repro.dialects import riscv, riscv_func, riscv_scf, riscv_snitch
from repro.dialects.riscv import FloatRegisterType, IntRegisterType
from repro.dialects.snitch_stream import StreamingRegionOp, StridePattern
from repro.ir import Builder, IRError


def make_func(arg_kinds=("int",)):
    fn = riscv_func.FuncOp(
        "f", riscv_func.abi_arg_types(list(arg_kinds))
    )
    return fn, Builder.at_end(fn.entry_block)


class TestBasicAllocation:
    def test_simple_chain(self):
        fn, b = make_func(["int", "int"])
        a0, a1 = fn.args
        add = b.insert(riscv.AddOp(a0, a1))
        b.insert(riscv.SwOp(add.rd, a0, 0))
        b.insert(riscv_func.ReturnOp())
        allocate_registers(fn)
        assert add.rd.type.is_allocated
        assert add.assembly_line().startswith("add ")

    def test_abi_registers_excluded(self):
        """Pass 1: the a-registers of the arguments never get reused."""
        fn, b = make_func(["int", "int", "int"])
        values = [b.insert(riscv.LiOp(i)).rd for i in range(5)]
        total = values[0]
        for v in values[1:]:
            total = b.insert(riscv.AddOp(total, v)).rd
        b.insert(riscv.SwOp(total, fn.args[0], 0))
        b.insert(riscv_func.ReturnOp())
        allocate_registers(fn)
        used = {v.type.register for v in values}
        assert not used & {"a0", "a1", "a2"}

    def test_registers_reused_after_death(self):
        """The backwards walk frees a register at its definition."""
        fn, b = make_func(["int"])
        li1 = b.insert(riscv.LiOp(1))
        use1 = b.insert(riscv.SwOp(li1.rd, fn.args[0], 0))
        li2 = b.insert(riscv.LiOp(2))
        b.insert(riscv.SwOp(li2.rd, fn.args[0], 8))
        b.insert(riscv_func.ReturnOp())
        allocate_registers(fn)
        # li1 dies at the first store; li2 can take the same register.
        assert li1.rd.type == li2.rd.type

    def test_overlapping_ranges_distinct(self):
        fn, b = make_func(["int"])
        li1 = b.insert(riscv.LiOp(1))
        li2 = b.insert(riscv.LiOp(2))
        add = b.insert(riscv.AddOp(li1.rd, li2.rd))
        b.insert(riscv.SwOp(add.rd, fn.args[0], 0))
        b.insert(riscv_func.ReturnOp())
        allocate_registers(fn)
        assert li1.rd.type != li2.rd.type

    def test_dead_result_still_gets_register(self):
        fn, b = make_func([])
        li = b.insert(riscv.LiOp(1))
        b.insert(riscv_func.ReturnOp())
        allocate_registers(fn)
        assert li.rd.type.is_allocated

    def test_pressure_error(self):
        """No spilling: exhausting the pool raises (paper Section 3.3)."""
        fn, b = make_func(["int"])
        values = [b.insert(riscv.LiOp(i)).rd for i in range(20)]
        total = values[0]
        for v in values[1:]:
            total = b.insert(riscv.AddOp(total, v)).rd
        b.insert(riscv.SwOp(total, fn.args[0], 0))
        b.insert(riscv_func.ReturnOp())
        with pytest.raises(RegisterPressureError):
            allocate_registers(fn)


class TestLoopAllocation:
    def _loop_func(self):
        """Accumulating loop: sum += 1.0, 10 times."""
        fn, b = make_func(["float"])
        lb = b.insert(riscv.LiOp(0)).rd
        ub = b.insert(riscv.LiOp(10)).rd
        step = b.insert(riscv.LiOp(1)).rd
        loop = riscv_scf.ForOp(lb, ub, step, [fn.args[0]])
        b.insert(loop)
        body = Builder.at_end(loop.body_block)
        acc = loop.body_iter_args[0]
        new = body.insert(riscv.FAddDOp(acc, acc))
        body.insert(riscv_scf.YieldOp([new.rd]))
        b.insert(riscv.FSdOp(loop.results[0], fn.args[0], 0)) if False else None
        b.insert(riscv_func.ReturnOp())
        return fn, loop, new

    def test_loop_group_unified(self):
        """Item D: body arg, yield operand and result share a register."""
        fn, loop, new = self._loop_func()
        allocate_registers(fn)
        group_types = {
            loop.body_iter_args[0].type,
            new.rd.type,
            loop.results[0].type,
        }
        assert len(group_types) == 1

    def test_multiuse_init_keeps_own_register(self):
        """An init used after the loop must not share the loop register."""
        fn, b = make_func(["int"])
        ptr = b.insert(riscv.MVOp(fn.args[0])).rd
        lb = b.insert(riscv.LiOp(0)).rd
        ub = b.insert(riscv.LiOp(4)).rd
        step = b.insert(riscv.LiOp(1)).rd
        loop = riscv_scf.ForOp(lb, ub, step, [ptr])
        b.insert(loop)
        body = Builder.at_end(loop.body_block)
        adv = body.insert(riscv.AddiOp(loop.body_iter_args[0], 8))
        body.insert(riscv_scf.YieldOp([adv.rd]))
        # second use of ptr after the loop:
        b.insert(riscv.SwOp(ptr, ptr, 0))
        b.insert(riscv_func.ReturnOp())
        allocate_registers(fn)
        assert ptr.type != loop.body_iter_args[0].type

    def test_outer_value_live_through_loop(self):
        """Pass 2/item B: a value used in the body keeps its register
        for the whole loop, not just until its (first) use."""
        fn, b = make_func(["int"])
        outer = b.insert(riscv.LiOp(42)).rd
        lb = b.insert(riscv.LiOp(0)).rd
        ub = b.insert(riscv.LiOp(4)).rd
        step = b.insert(riscv.LiOp(1)).rd
        loop = riscv_scf.ForOp(lb, ub, step)
        b.insert(loop)
        body = Builder.at_end(loop.body_block)
        tmp = body.insert(riscv.LiOp(1)).rd
        body.insert(riscv.AddOp(outer, tmp))
        body.insert(riscv_scf.YieldOp())
        b.insert(riscv_func.ReturnOp())
        allocate_registers(fn)
        # The body temp must not steal the outer value's register.
        assert tmp.type != outer.type

    def test_frep_group_includes_init(self):
        """FREP has no loop preamble: init must share the register."""
        fn, b = make_func(["float"])
        x = b.insert(
            riscv.GetRegisterOp(FloatRegisterType("ft0"))
        ).result
        init = b.insert(riscv.FMVOp(fn.args[0])).rd
        count = b.insert(riscv.LiOp(9)).rd
        frep = riscv_snitch.FrepOuter(count, [init])
        b.insert(frep)
        body = Builder.at_end(frep.body_block)
        fma = body.insert(
            riscv.FMAddDOp(x, x, frep.body_iter_args[0])
        )
        body.insert(riscv_snitch.FrepYieldOp([fma.rd]))
        b.insert(riscv_func.ReturnOp())
        allocate_registers(fn)
        assert init.type == frep.body_iter_args[0].type == fma.rd.type


class TestStreamingReservation:
    def test_stream_registers_reserved(self):
        """Item E: ft0-ft2 are not handed out inside streaming scopes."""
        fn, b = make_func(["int", "int"])
        pattern = StridePattern([8], [8])
        region = StreamingRegionOp(
            [fn.args[0]], [fn.args[1]], [pattern, pattern]
        )
        b.insert(region)
        inner = Builder.at_end(region.body_block)
        read = inner.insert(
            riscv_snitch.ReadOp(region.body_block.args[0])
        )
        # Lots of concurrently live FP temps inside the region.
        temps = [
            inner.insert(riscv.FAddDOp(read.result, read.result)).rd
            for _ in range(3)
        ]
        total = temps[0]
        for t in temps[1:]:
            total = inner.insert(riscv.FAddDOp(total, t)).rd
        inner.insert(
            riscv_snitch.WriteOp(total, region.body_block.args[1])
        )
        b.insert(riscv_func.ReturnOp())
        allocate_registers(fn)
        for t in temps:
            assert t.type.register not in SNITCH_STREAM_REGISTERS

    def test_tied_operands_share_register(self):
        fn, b = make_func([])
        zero = b.insert(riscv.GetRegisterOp(IntRegisterType("zero")))
        acc0 = b.insert(riscv.FCvtDWOp(zero.result)).results[0]
        x = b.insert(riscv.FCvtDWOp(zero.result)).results[0]
        mac = b.insert(riscv_snitch.VFMacSOp(acc0, x, x))
        b.insert(
            riscv.FSdOp(
                mac.rd,
                b.insert(riscv.LiOp(64)).rd,
                0,
            )
        )
        b.insert(riscv_func.ReturnOp())
        allocate_registers(fn)
        assert acc0.type == mac.rd.type


class TestUnusedAbiRegisterReuse:
    """The paper's future-work mitigation (Section 4.3)."""

    def _func_with_dead_arg(self):
        fn, b = make_func(["int", "int"])  # a1 never used
        li = b.insert(riscv.LiOp(1))
        b.insert(riscv.SwOp(li.rd, fn.args[0], 0))
        b.insert(riscv_func.ReturnOp())
        return fn, li

    def test_default_reserves_all_arguments(self):
        fn, li = self._func_with_dead_arg()
        # Exhaust t-registers so the allocator would reach for a1.
        b = Builder.before(fn.entry_block.ops[-1])
        held = [b.insert(riscv.LiOp(i)).rd for i in range(7)]
        total = held[0]
        for v in held[1:]:
            total = b.insert(riscv.AddOp(total, v)).rd
        b.insert(riscv.SwOp(total, fn.args[0], 4))
        RegisterAllocator().allocate(fn)
        used = {v.type.register for v in held}
        assert "a1" not in used

    def test_option_releases_dead_argument_register(self):
        fn, li = self._func_with_dead_arg()
        b = Builder.before(fn.entry_block.ops[-1])
        held = [b.insert(riscv.LiOp(i)).rd for i in range(9)]
        total = held[0]
        for v in held[1:]:
            total = b.insert(riscv.AddOp(total, v)).rd
        b.insert(riscv.SwOp(total, fn.args[0], 4))
        RegisterAllocator(reuse_unused_abi_registers=True).allocate(fn)
        used = {v.type.register for v in held}
        assert "a1" in used  # the dead argument's register was reused

    def test_used_argument_still_reserved(self):
        fn, b = make_func(["int"])
        li = b.insert(riscv.LiOp(5))
        b.insert(riscv.SwOp(li.rd, fn.args[0], 0))
        b.insert(riscv_func.ReturnOp())
        RegisterAllocator(reuse_unused_abi_registers=True).allocate(fn)
        assert li.rd.type.register != "a0"


class TestRegisterCounting:
    def test_count_used(self):
        fn, b = make_func(["int", "float"])
        li = b.insert(riscv.LiOp(1))
        b.insert(riscv.SwOp(li.rd, fn.args[0], 0))
        b.insert(riscv_func.ReturnOp())
        allocate_registers(fn)
        fp, integer = count_used_registers(fn)
        assert fp == 1  # fa0 argument
        assert integer == 2  # a0 + the li register

    def test_zero_not_counted(self):
        fn, b = make_func([])
        b.insert(riscv.GetRegisterOp(IntRegisterType("zero")))
        b.insert(riscv_func.ReturnOp())
        allocate_registers(fn)
        fp, integer = count_used_registers(fn)
        assert integer == 0
