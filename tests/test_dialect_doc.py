"""Tests for the dialect reference generator and the op registry."""

import pytest

from repro.ir import op_registry
from repro.tools import dialect_doc


class TestRegistry:
    def test_lookup_known(self):
        from repro.dialects.arith import AddfOp

        assert op_registry.lookup("arith.addf") is AddfOp

    def test_lookup_unknown_returns_base(self):
        from repro.ir.core import Operation

        assert op_registry.lookup("nope.nothing") is Operation

    def test_all_paper_dialects_present(self):
        names = op_registry.registered_names()
        dialects = {name.partition(".")[0] for name in names}
        # Figure 5 of the paper: existing + contributed dialects.
        assert {
            "linalg",
            "memref_stream",
            "rv",
            "rv_cf",
            "rv_func",
            "rv_scf",
            "rv_snitch",
            "snitch_stream",
        } <= dialects

    def test_duplicate_registration_rejected(self):
        from repro.dialects.arith import AddfOp

        class Impostor(AddfOp):
            name = "arith.addf"

        op_registry.populate()
        with pytest.raises(ValueError):
            op_registry.register(Impostor)

    def test_abstract_helpers_not_registered(self):
        assert "builtin.unregistered" not in (
            op_registry.registered_names()
        )


class TestDocGenerator:
    def test_contains_every_registered_op(self):
        text = dialect_doc.generate()
        for name in op_registry.registered_names():
            assert f"`{name}`" in text

    def test_dialect_summaries_included(self):
        text = dialect_doc.generate()
        assert "## rv_snitch" in text
        assert "FREP" in text

    def test_no_undocumented_operations(self):
        """Deliverable check: every public op carries a doc comment."""
        assert "(undocumented)" not in dialect_doc.generate()

    def test_cli_writes_file(self, tmp_path):
        target = tmp_path / "dialects.md"
        assert dialect_doc.main([str(target)]) == 0
        assert target.read_text().startswith("# Dialect reference")

    def test_cli_stdout(self, capsys):
        assert dialect_doc.main([]) == 0
        assert "# Dialect reference" in capsys.readouterr().out
