"""Tests for the memref_stream bridge dialect (paper Figure 7)."""

import pytest

from repro.dialects import arith, memref, memref_stream
from repro.dialects.stream import ReadableStreamType, WritableStreamType
from repro.ir import AffineMap, Block, IRError, MemRefType, Region, f64


def _buffers():
    x = memref.AllocOp(MemRefType(f64, (200,)))
    y = memref.AllocOp(MemRefType(f64, (5, 200)))
    z = memref.AllocOp(MemRefType(f64, (5,)))
    return x.result, y.result, z.result


def _matvec_generic(scalar_replaced=True, interleave=1):
    """The paper's running matvec example at the memref_stream level."""
    x, y, z = _buffers()
    bounds = [5, 200]
    kinds = ["parallel", "reduction"]
    x_map = AffineMap.from_callable(2, lambda d0, d1: (d1,))
    y_map = AffineMap.from_callable(2, lambda d0, d1: (d0, d1))
    if scalar_replaced:
        z_map = AffineMap.from_callable(1, lambda d0: (d0,))
    else:
        z_map = AffineMap.from_callable(2, lambda d0, d1: (d0,))
    block = Block([f64] * 3)
    prod = arith.MulfOp(block.args[0], block.args[1])
    acc = arith.AddfOp(block.args[2], prod.result)
    block.add_ops([prod, acc, memref_stream.YieldOp([acc.result])])
    return memref_stream.GenericOp(
        inputs=[x, y],
        outputs=[z],
        indexing_maps=[x_map, y_map, z_map],
        iterator_types=kinds,
        bounds=bounds,
        body=Region([block]),
    )


class TestGeneric:
    def test_explicit_bounds(self):
        g = _matvec_generic()
        assert g.bounds == (5, 200)

    def test_reduction_and_parallel_dims(self):
        g = _matvec_generic()
        assert g.reduction_dims == [1]
        assert g.parallel_dims == [0]

    def test_scalar_replaced_detection(self):
        assert _matvec_generic(scalar_replaced=True).is_scalar_replaced
        assert not _matvec_generic(
            scalar_replaced=False
        ).is_scalar_replaced

    def test_default_inits_from_memory(self):
        g = _matvec_generic()
        assert g.inits == [memref_stream.FROM_MEMORY]

    def test_interleave_factor_default(self):
        assert _matvec_generic().interleave_factor == 1

    def test_verify_bounds_length(self):
        g = _matvec_generic()
        from repro.ir.attributes import DenseIntAttr

        g.attributes["bounds"] = DenseIntAttr([5])
        with pytest.raises(IRError):
            g.verify_()

    def test_verify_body_arity_with_interleaving(self):
        g = _matvec_generic()
        from repro.ir.attributes import ArrayAttr, DenseIntAttr, StringAttr

        # Claim an interleaved dim of 4 without widening the body.
        g.attributes["bounds"] = DenseIntAttr([5, 200, 4])
        g.attributes["iterator_types"] = ArrayAttr(
            [
                StringAttr("parallel"),
                StringAttr("reduction"),
                StringAttr("interleaved"),
            ]
        )
        from repro.ir import AffineMap as AM

        g.attributes["indexing_maps"] = ArrayAttr(
            [
                AM.from_callable(3, lambda a, b, c: (b,)),
                AM.from_callable(3, lambda a, b, c: (a, b)),
                AM.from_callable(2, lambda a, c: (a,)),
            ]
        )
        with pytest.raises(IRError):
            g.verify_()


class TestStridePatternAttr:
    def test_byte_strides_and_offset(self):
        y_type = MemRefType(f64, (5, 200))
        pattern = memref_stream.StridePatternAttr(
            ub=__import__(
                "repro.ir.attributes", fromlist=["DenseIntAttr"]
            ).DenseIntAttr([5, 200]),
            index_map=AffineMap.identity(2),
        )
        strides, offset = pattern.byte_strides_and_offset(y_type)
        assert strides == (1600, 8)
        assert offset == 0

    def test_access_sequence_row_major(self):
        from repro.ir.attributes import DenseIntAttr

        pattern = memref_stream.StridePatternAttr(
            ub=DenseIntAttr([2, 3]),
            index_map=AffineMap.identity(2),
        )
        seq = pattern.access_sequence(MemRefType(f64, (2, 3)))
        assert seq == [0, 8, 16, 24, 32, 40]


class TestStreamingRegion:
    def test_body_for_types(self):
        region, block = memref_stream.StreamingRegionOp.body_for(
            [f64, f64], [f64]
        )
        assert isinstance(block.args[0].type, ReadableStreamType)
        assert isinstance(block.args[2].type, WritableStreamType)

    def test_read_write_type_checks(self):
        region, block = memref_stream.StreamingRegionOp.body_for(
            [f64], [f64]
        )
        read = memref_stream.ReadOp(block.args[0])
        assert read.result.type == f64
        memref_stream.WriteOp(read.result, block.args[1])
        with pytest.raises(IRError):
            memref_stream.ReadOp(block.args[1])  # writable stream
        with pytest.raises(IRError):
            memref_stream.WriteOp(read.result, block.args[0])
