"""Differential compiler testing over randomized kernel structures.

Generates generalized contraction kernels — random bounds and random
operand *transpositions* (so stream patterns exercise non-contiguous,
strided and repeated access) — and requires the full Snitch pipeline and
the naive baseline lowering to produce identical memory contents.  Two
independent lowerings agreeing on random programs is a much stronger
oracle than any hand-written expectation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import api
from repro.dialects import arith, func, linalg
from repro.dialects.builtin import ModuleOp
from repro.ir import AffineMap, Block, MemRefType, Region, f64


def build_contraction(m, n, k, transpose_a, transpose_b, transpose_c):
    """C[(i,j)] (+)= A[(i,k) or (k,i)] * B[(k,j) or (j,k)]."""
    a_shape = (k, m) if transpose_a else (m, k)
    b_shape = (n, k) if transpose_b else (k, n)
    c_shape = (n, m) if transpose_c else (m, n)
    a_map = AffineMap.from_callable(
        3, lambda i, j, kk: (kk, i) if transpose_a else (i, kk)
    )
    b_map = AffineMap.from_callable(
        3, lambda i, j, kk: (j, kk) if transpose_b else (kk, j)
    )
    c_map = AffineMap.from_callable(
        3, lambda i, j, kk: (j, i) if transpose_c else (i, j)
    )
    fn = func.FuncOp(
        "contract",
        [
            MemRefType(f64, a_shape),
            MemRefType(f64, b_shape),
            MemRefType(f64, c_shape),
        ],
    )
    a, b, c = fn.args
    zero = arith.ConstantOp.from_float(0.0, f64)
    fn.entry_block.add_op(zero)
    fn.entry_block.add_op(linalg.FillOp(zero.result, c))
    block = Block([f64, f64, f64])
    prod = arith.MulfOp(block.args[0], block.args[1])
    acc = arith.AddfOp(block.args[2], prod.result)
    block.add_ops([prod, acc, linalg.YieldOp([acc.result])])
    fn.entry_block.add_op(
        linalg.GenericOp(
            inputs=[a, b],
            outputs=[c],
            indexing_maps=[a_map, b_map, c_map],
            iterator_types=["parallel", "parallel", "reduction"],
            body=Region([block]),
        )
    )
    fn.entry_block.add_op(func.ReturnOp())
    shapes = (a_shape, b_shape, c_shape)
    return ModuleOp([fn]), shapes


def run_pipeline(pipeline, shapes, arrays, builder_args):
    module, _ = build_contraction(*builder_args)
    compiled = api.compile_linalg(module, pipeline=pipeline)
    result = api.run_kernel(
        compiled, [array.copy() for array in arrays]
    )
    return result.arrays[2]


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(1, 5),
    n=st.integers(1, 6),
    k=st.integers(1, 6),
    transpose_a=st.booleans(),
    transpose_b=st.booleans(),
    transpose_c=st.booleans(),
    seed=st.integers(0, 2**16),
)
def test_random_contractions_agree_across_lowerings(
    m, n, k, transpose_a, transpose_b, transpose_c, seed
):
    builder_args = (m, n, k, transpose_a, transpose_b, transpose_c)
    module, shapes = build_contraction(*builder_args)
    rng = np.random.default_rng(seed)
    arrays = [
        rng.uniform(-1, 1, shapes[0]),
        rng.uniform(-1, 1, shapes[1]),
        np.zeros(shapes[2]),
    ]
    ours = run_pipeline("ours", shapes, arrays, builder_args)
    baseline = run_pipeline(
        "table3-baseline", shapes, arrays, builder_args
    )
    np.testing.assert_allclose(ours, baseline, atol=1e-9)
    # Also check against numpy directly.
    a = arrays[0].T if transpose_a else arrays[0]
    b = arrays[1].T if transpose_b else arrays[1]
    expected = a @ b
    if transpose_c:
        expected = expected.T
    np.testing.assert_allclose(ours, expected, atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(1, 6),
    m=st.integers(1, 6),
    transpose_x=st.booleans(),
    seed=st.integers(0, 2**16),
)
def test_transposed_elementwise_agree(n, m, transpose_x, seed):
    """z[i,j] = x[j,i] + y[i,j]: a transposed input stream."""
    x_shape = (m, n) if transpose_x else (n, m)
    fn = func.FuncOp(
        "tsum",
        [
            MemRefType(f64, x_shape),
            MemRefType(f64, (n, m)),
            MemRefType(f64, (n, m)),
        ],
    )
    x, y, z = fn.args
    x_map = AffineMap.from_callable(
        2, lambda i, j: (j, i) if transpose_x else (i, j)
    )
    identity = AffineMap.identity(2)
    block = Block([f64, f64, f64])
    add = arith.AddfOp(block.args[0], block.args[1])
    block.add_ops([add, linalg.YieldOp([add.result])])
    fn.entry_block.add_op(
        linalg.GenericOp(
            inputs=[x, y],
            outputs=[z],
            indexing_maps=[x_map, identity, identity],
            iterator_types=["parallel", "parallel"],
            body=Region([block]),
        )
    )
    fn.entry_block.add_op(func.ReturnOp())
    module = ModuleOp([fn])

    rng = np.random.default_rng(seed)
    x_data = rng.uniform(-1, 1, x_shape)
    y_data = rng.uniform(-1, 1, (n, m))
    compiled = api.compile_linalg(module, pipeline="ours")
    result = api.run_kernel(
        compiled, [x_data, y_data, np.zeros((n, m))]
    )
    expected = (x_data.T if transpose_x else x_data) + y_data
    np.testing.assert_allclose(result.arrays[2], expected, atol=1e-12)
