"""The observability layer: metrics registry, span tracer, profiler.

Covers the :mod:`repro.obs` subsystem end to end:

* metrics — labeled counters/gauges/histograms, snapshot/delta,
  JSON + Prometheus text export, thread safety under contention;
* tracing — contextvars scoping (zero-cost when disabled), parent
  linkage, correlation IDs, cross-process absorb, Chrome trace-event
  export;
* profiler — the Table 1 cycle-attribution invariants (buckets
  partition the run exactly; FPU-arith agrees with the trace) and
  observer-effect freedom (profiled and traced runs stay bit-exact);
* the migrated legacy counters (``DECODE_STATS``, ``REWRITE_STATS``)
  keep their old read API while now being registry-backed and atomic;
* ``ExecutionTrace`` JSON round-trip and multi-core merge.
"""

import json
import threading

import numpy as np
import pytest

from repro import api, kernels
from repro.ir.rewriter import REWRITE_STATS
from repro.obs.metrics import (
    METRICS,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profiler import BUCKETS, CycleProfiler
from repro.obs.tracing import (
    TraceRecorder,
    absorb,
    correlation,
    correlation_id,
    new_correlation_id,
    recording,
    span,
    tracing_enabled,
)
from repro.snitch.engine import DECODE_STATS
from repro.snitch.machine import SnitchMachine
from repro.snitch.trace import ExecutionTrace


# -- metrics registry ---------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("jobs").inc(-1)

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("jobs", kind="compile").inc(2)
        registry.counter("jobs", kind="measure").inc(3)
        assert registry.counter("jobs", kind="compile").value == 2
        assert registry.counter("jobs", kind="measure").value == 3

    def test_same_name_same_labels_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a", x="1") is registry.counter(
            "a", x="1"
        )

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TypeError):
            registry.gauge("thing")

    def test_gauge_set_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10.0)
        gauge.add(-3.0)
        assert gauge.value == 7.0

    def test_histogram_observe(self):
        histogram = Histogram("latency")
        for value in (0.002, 0.002, 5.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.004)
        assert snap["min"] == pytest.approx(0.002)
        assert snap["max"] == pytest.approx(5.0)

    def test_snapshot_and_delta(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(2)
        before = registry.snapshot()
        registry.counter("jobs").inc(3)
        delta = registry.delta(before)
        assert delta["jobs"] == 3

    def test_to_json_shape(self):
        registry = MetricsRegistry()
        registry.counter("jobs", kind="a").inc()
        registry.gauge("depth").set(2)
        registry.histogram("lat").observe(0.5)
        doc = registry.to_json()
        assert set(doc) == {"counters", "gauges", "histograms"}
        assert doc["counters"]['jobs{kind="a"}'] == 1

    def test_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("jobs", kind="a").inc(2)
        registry.histogram("lat").observe(0.5)
        text = registry.to_prometheus()
        assert '# TYPE jobs counter' in text
        assert 'jobs{kind="a"} 2' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")

        def hammer():
            for _ in range(10_000):
                counter.inc()

        threads = [
            threading.Thread(target=hammer) for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 80_000

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(5)
        registry.reset()
        assert registry.counter("jobs").value == 0


# -- legacy counter migration (satellite: thread-safety hole) ----------------


class TestMigratedCounters:
    def test_decode_stats_reads_like_a_dict(self):
        base = DECODE_STATS["programs_decoded"]
        assert isinstance(base, int)
        assert set(DECODE_STATS) >= {
            "programs_decoded",
            "instructions_decoded",
        }
        assert len(DECODE_STATS) >= 2

    def test_decode_stats_backed_by_registry(self):
        before = METRICS.counter("engine_programs_decoded").value
        assert DECODE_STATS["programs_decoded"] == before

    def test_rewrite_stats_snapshot_delta(self):
        before = REWRITE_STATS.snapshot()
        REWRITE_STATS.add(visited=2, invoked=1, applied=1)
        delta = REWRITE_STATS.delta(before)
        assert delta["ops_visited"] == 2
        assert delta["pattern_invocations"] == 1
        assert delta["rewrites_applied"] == 1

    def test_rewrite_stats_concurrent_adds(self):
        before = REWRITE_STATS.snapshot()

        def hammer():
            for _ in range(5_000):
                REWRITE_STATS.add(visited=1)

        threads = [
            threading.Thread(target=hammer) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert REWRITE_STATS.delta(before)["ops_visited"] == 20_000


# -- span tracing -------------------------------------------------------------


class TestTracing:
    def test_disabled_by_default(self):
        assert not tracing_enabled()
        with span("noop.section") as handle:
            assert handle is None

    def test_recording_scopes_a_recorder(self):
        with recording() as recorder:
            assert tracing_enabled()
            with span("unit.work", detail=7):
                pass
        assert not tracing_enabled()
        events = recorder.events_json()
        assert len(events) == 1
        (event,) = events
        assert event["name"] == "unit.work"
        assert event["cat"] == "unit"
        assert event["ph"] == "X"
        assert event["args"]["detail"] == 7

    def test_parent_linkage(self):
        with recording() as recorder:
            with span("outer.op"):
                with span("inner.op"):
                    pass
        by_name = {
            event["name"]: event
            for event in recorder.events_json()
        }
        assert by_name["inner.op"]["args"]["parent"] == "outer.op"
        assert "parent" not in by_name["outer.op"]["args"]

    def test_correlation_id_rides_spans(self):
        cid = new_correlation_id()
        with recording() as recorder, correlation(cid):
            with span("unit.work"):
                pass
            assert correlation_id() == cid
        (event,) = recorder.events_json()
        assert event["args"]["correlation_id"] == cid

    def test_absorb_merges_foreign_events(self):
        foreign = [{"name": "far.away", "ph": "X", "args": {}}]
        absorb(foreign)  # disabled: no-op, no error
        with recording() as recorder:
            absorb(foreign)
        assert recorder.events_json() == foreign

    def test_fresh_thread_sees_no_recorder(self):
        seen = {}

        def probe():
            seen["enabled"] = tracing_enabled()

        with recording():
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["enabled"] is False

    def test_chrome_trace_shape(self, tmp_path):
        with recording() as recorder:
            with span("unit.work"):
                pass
        doc = recorder.chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        kinds = {event["ph"] for event in doc["traceEvents"]}
        assert kinds == {"M", "X"}
        path = recorder.save(tmp_path / "trace.json")
        reloaded = json.loads(path.read_text())
        assert reloaded["traceEvents"]

    def test_nested_recorders_innermost_wins(self):
        with recording() as outer:
            with recording() as inner:
                with span("unit.work"):
                    pass
            assert len(inner) == 1
            assert len(outer) == 0


# -- execution-trace round-trip + merge (satellite) --------------------------


class TestExecutionTraceSerde:
    def _run(self, sizes=(2, 4, 4)):
        module, spec = kernels.matmul(*sizes)
        compiled = api.compile_linalg(module, pipeline="ours")
        result = api.run_kernel(
            compiled, spec.random_arguments(seed=0)
        )
        return result.trace

    def test_round_trip_identity(self):
        trace = self._run()
        clone = ExecutionTrace.from_json(trace.to_json())
        assert clone == trace

    def test_json_is_plain_data(self):
        payload = self._run().to_json()
        json.dumps(payload)  # must be JSON-serializable as-is
        assert payload["cycles"] > 0

    def test_from_json_ignores_unknown_keys(self):
        payload = self._run().to_json()
        payload["from_the_future"] = 123
        clone = ExecutionTrace.from_json(payload)
        assert clone.cycles == payload["cycles"]

    def test_merge_cycles_maxed_counters_summed(self):
        first = ExecutionTrace()
        first.cycles = 100
        first.fpu_arith_cycles = 40
        first.fmadd = 10
        first.fpu_stall_cycles = 5
        first.histogram["fmadd.d"] = 4
        second = ExecutionTrace()
        second.cycles = 70
        second.fpu_arith_cycles = 30
        second.fmadd = 8
        second.fpu_stall_cycles = 9
        second.histogram["fmadd.d"] = 2
        second.histogram["fadd.d"] = 1
        merged = ExecutionTrace.merge([first, second])
        assert merged.cycles == 100  # critical path, not a sum
        assert merged.fpu_stall_cycles == 9  # also concurrent
        assert merged.fpu_arith_cycles == 70
        assert merged.fmadd == 18
        assert merged.histogram == {"fmadd.d": 6, "fadd.d": 1}


# -- cycle-attribution profiler ----------------------------------------------


def _profiled_run(kernel="matmul", sizes=(2, 4, 4), pipeline="ours"):
    builder, _ = kernels.KERNEL_BUILDERS[kernel]
    module, spec = builder(*sizes)
    compiled = api.compile_linalg(module, pipeline=pipeline)
    return api.run_kernel(
        compiled, spec.random_arguments(seed=0), profile=True
    )


class TestCycleProfiler:
    @pytest.mark.parametrize(
        "pipeline", ("ours", "table3-scalar", "table3-baseline")
    )
    def test_buckets_partition_the_run(self, pipeline):
        result = _profiled_run(pipeline=pipeline)
        profile = result.profile
        assert sum(profile.buckets.values()) == profile.cycles
        assert profile.idle == 0

    def test_fpu_arith_matches_trace(self):
        result = _profiled_run()
        assert (
            result.profile.buckets["fpu_arith"]
            == result.trace.fpu_arith_cycles
        )

    def test_regions_partition_the_run(self):
        profile = _profiled_run().profile
        region_total = sum(
            sum(buckets.values())
            for buckets in profile.regions.values()
        )
        assert region_total == profile.cycles

    def test_frep_body_dominates_ours(self):
        profile = _profiled_run(sizes=(4, 8, 8)).profile
        frep = sum(profile.regions["frep_body"].values())
        assert frep > 0
        assert profile.regions["frep_body"]["fpu_arith"] == frep

    def test_scalar_pipeline_shows_int_bottleneck(self):
        profile = _profiled_run(pipeline="table3-baseline").profile
        assert profile.buckets["int_core"] > profile.buckets[
            "fpu_arith"
        ]
        assert sum(profile.regions["frep_body"].values()) == 0

    def test_report_fields(self):
        profile = _profiled_run().profile
        doc = profile.to_json()
        assert set(doc["buckets"]) == set(BUCKETS)
        assert 0.0 <= doc["fpu_utilization"] <= 1.0
        assert doc["flops_per_cycle"] == pytest.approx(
            doc["flops"] / doc["cycles"]
        )
        assert "fpu utilization" in profile.summary()

    def test_attach_requires_timeline(self):
        module, _spec = kernels.matmul(2, 4, 4)
        compiled = api.compile_linalg(module, pipeline="ours")
        machine = SnitchMachine(compiled.program)
        with pytest.raises(ValueError):
            CycleProfiler.attach(machine)


# -- tuner span smuggling across the fork boundary ----------------------------


class TestTuneTracing:
    def test_worker_spans_reach_the_caller(self, tmp_path):
        from repro.tune.search import tune_kernel

        cid = new_correlation_id()
        with recording() as recorder, correlation(cid):
            result = tune_kernel(
                "relu", (4, 8), budget=2, workers=2,
                cache=tmp_path / "cache.json",
            )
        assert result.best.cycles > 0
        events = recorder.events_json()
        names = {event["name"] for event in events}
        assert {"tune.search", "tune.candidate", "sim.run"} <= names
        assert {
            event["args"].get("correlation_id") for event in events
        } == {cid}

    def test_serial_tuning_spans(self):
        from repro.tune.search import tune_kernel

        with recording() as recorder:
            tune_kernel("relu", (4, 8), budget=1)
        names = {
            event["name"] for event in recorder.events_json()
        }
        assert "tune.search" in names

    def test_untraced_tuning_unchanged(self):
        from repro.tune.search import tune_kernel

        plain = tune_kernel("sum", (4, 8), budget=2)
        with recording():
            traced = tune_kernel("sum", (4, 8), budget=2)
        assert traced.best.cycles == plain.best.cycles


# -- observer-effect freedom (satellite) -------------------------------------


class TestObserverEffectFreedom:
    """Instrumentation must never change what it observes."""

    @pytest.mark.parametrize(
        "kernel,sizes",
        (
            ("matmul", (2, 4, 4)),
            ("relu", (4, 8)),
            ("conv3x3", (6, 6)),
        ),
    )
    def test_profiled_run_is_bit_identical(self, kernel, sizes):
        builder, _ = kernels.KERNEL_BUILDERS[kernel]
        module, spec = builder(*sizes)
        compiled = api.compile_linalg(module, pipeline="ours")
        args = spec.random_arguments(seed=0)
        plain = api.run_kernel(compiled, list(args))
        profiled = api.run_kernel(
            compiled, list(args), profile=True
        )
        assert profiled.trace.cycles == plain.trace.cycles
        assert profiled.trace == plain.trace
        for got, want in zip(profiled.arrays, plain.arrays):
            np.testing.assert_array_equal(got, want)
        assert profiled.profile is not None
        assert plain.profile is None

    def test_traced_run_is_bit_identical(self):
        module, spec = kernels.matmul(2, 4, 4)
        compiled = api.compile_linalg(module, pipeline="ours")
        args = spec.random_arguments(seed=0)
        plain = api.run_kernel(compiled, list(args))
        with recording() as recorder:
            traced = api.run_kernel(compiled, list(args))
        assert traced.trace == plain.trace
        for got, want in zip(traced.arrays, plain.arrays):
            np.testing.assert_array_equal(got, want)
        assert any(
            event["name"] == "sim.run"
            for event in recorder.events_json()
        )
