"""Tests for assembly emission."""

import pytest

from repro.backend.asm_emitter import (
    AsmEmissionError,
    emit_function,
    emit_module,
)
from repro.dialects import riscv, riscv_cf, riscv_func, riscv_scf, riscv_snitch
from repro.dialects.builtin import ModuleOp
from repro.dialects.riscv import FloatRegisterType, IntRegisterType
from repro.ir import Builder


def simple_func(name="f"):
    fn = riscv_func.FuncOp(name, riscv_func.abi_arg_types(["int"]))
    builder = Builder.at_end(fn.entry_block)
    return fn, builder


class TestEmission:
    def test_function_header(self):
        fn, b = simple_func("kernel")
        b.insert(riscv_func.ReturnOp())
        asm = emit_function(fn)
        assert asm.startswith(".globl kernel\nkernel:\n")
        assert asm.rstrip().endswith("ret")

    def test_instructions_indented(self):
        fn, b = simple_func()
        b.insert(riscv.LiOp(3, result_type=IntRegisterType("t0")))
        b.insert(riscv_func.ReturnOp())
        lines = emit_function(fn).splitlines()
        assert "    li t0, 3" in lines

    def test_labels_not_indented(self):
        fn, b = simple_func()
        b.insert(riscv_cf.LabelOp(".loop"))
        b.insert(riscv_func.ReturnOp())
        assert "\n.loop:\n" in emit_function(fn)

    def test_get_register_invisible(self):
        fn, b = simple_func()
        b.insert(riscv.GetRegisterOp(IntRegisterType("zero")))
        b.insert(riscv_func.ReturnOp())
        asm = emit_function(fn)
        assert "zero" not in asm  # nothing printed for it

    def test_multi_function_module(self):
        fn1, b1 = simple_func("first")
        b1.insert(riscv_func.ReturnOp())
        fn2, b2 = simple_func("second")
        b2.insert(riscv_func.ReturnOp())
        asm = emit_module(ModuleOp([fn1, fn2]))
        assert ".globl first" in asm and ".globl second" in asm
        assert asm.index("first") < asm.index("second")

    def test_frep_emits_body_count(self):
        fn, b = simple_func()
        count = b.insert(
            riscv.LiOp(9, result_type=IntRegisterType("t0"))
        ).rd
        frep = riscv_snitch.FrepOuter(count)
        x = b.insert(
            riscv.GetRegisterOp(FloatRegisterType("ft0"))
        ).result
        body = Builder.at_end(frep.body_block)
        body.insert(
            riscv.FAddDOp(x, x, result_type=FloatRegisterType("ft1"))
        )
        body.insert(riscv_snitch.FrepYieldOp())
        b.insert(frep)
        b.insert(riscv_func.ReturnOp())
        asm = emit_function(fn)
        assert "    frep.o t0, 1, 0, 0\n    fadd.d ft1, ft0, ft0" in asm

    def test_unlowered_loop_rejected(self):
        fn, b = simple_func()
        zero = b.insert(
            riscv.GetRegisterOp(IntRegisterType("zero"))
        ).result
        loop = riscv_scf.ForOp(zero, zero, zero)
        loop.body_block.add_op(riscv_scf.YieldOp())
        b.insert(loop)
        b.insert(riscv_func.ReturnOp())
        with pytest.raises(AsmEmissionError):
            emit_function(fn)

    def test_empty_frep_rejected(self):
        fn, b = simple_func()
        count = b.insert(
            riscv.LiOp(1, result_type=IntRegisterType("t0"))
        ).rd
        frep = riscv_snitch.FrepOuter(count)
        Builder.at_end(frep.body_block).insert(
            riscv_snitch.FrepYieldOp()
        )
        b.insert(frep)
        b.insert(riscv_func.ReturnOp())
        with pytest.raises(AsmEmissionError):
            emit_function(fn)

    def test_emitted_asm_reassembles(self):
        """Everything the emitter prints, the assembler accepts."""
        from repro import api, kernels
        from repro.snitch.assembler import assemble

        for pipeline in ("ours", "clang", "table3-streams"):
            module, _ = kernels.matmul(1, 8, 4)
            compiled = api.compile_linalg(module, pipeline=pipeline)
            program = assemble(compiled.asm)
            assert program.instructions
