"""Degraded-path tests: fault taxonomy, hardened pool, crash-safe
cache, deadline watchdogs, and the chaos property.

Everything here exercises the tuner *when things go wrong*: workers
SIGKILLed mid-batch, candidates stalled past their deadline, corrupt
cache bytes, Ctrl-C mid-search.  Faults are injected deterministically
through :class:`repro.tune.FaultInjector`, so every failure scenario
replays bit-for-bit.

Environment knobs (the CI chaos job turns them):

* ``REPRO_TUNE_TEST_WORKERS`` — pool width for the chaos property
  (default 2);
* ``REPRO_TUNE_TEST_DEADLINE`` — per-candidate deadline in seconds
  (default 0.75; keep it low so delay injections resolve quickly).
"""

import json
import multiprocessing
import os
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api, kernels
from repro.snitch.machine import DeadlineExceeded, SnitchMachine
from repro.snitch.memory import TCDM
from repro.tools import kernel_tuner
from repro.tune import (
    FAULT_KINDS,
    CompileFault,
    Fault,
    FaultInjector,
    HardenedPool,
    Injection,
    PoolConfig,
    SearchInterrupted,
    SimFault,
    TimeoutFault,
    TuneCache,
    UnknownFault,
    WorkerCrash,
    classify_error,
    evaluate_config,
    tune_kernel,
)
from repro.tune.schedule import ScheduleConfig, ScheduleError

CHAOS_WORKERS = int(os.environ.get("REPRO_TUNE_TEST_WORKERS", "2"))
CHAOS_DEADLINE = float(os.environ.get("REPRO_TUNE_TEST_DEADLINE", "0.75"))


# -- taxonomy -------------------------------------------------------------------


class TestFaultTaxonomy:
    def test_json_round_trip(self):
        fault = TimeoutFault(
            message="blew the deadline",
            candidate="perm=default|factor=1|cores=1",
            stage="simulate",
            attempts=3,
        )
        back = Fault.from_json(fault.to_json())
        assert type(back) is TimeoutFault
        assert back == fault
        assert back.retryable and back.kind == "timeout"

    def test_unknown_kind_degrades_not_errors(self):
        data = {"kind": "not-a-kind", "message": "mystery"}
        back = Fault.from_json(data)
        assert type(back) is UnknownFault

    def test_malformed_record_raises(self):
        with pytest.raises(ValueError):
            Fault.from_json({"kind": "compile"})  # no message

    def test_retryability_classes(self):
        assert not CompileFault(message="x").retryable
        assert not SimFault(message="x").retryable
        assert TimeoutFault(message="x").retryable
        assert WorkerCrash(message="x").retryable

    def test_classify_deadline_is_timeout_anywhere(self):
        fault = classify_error(
            DeadlineExceeded("too slow"), stage="verify"
        )
        assert fault.kind == "timeout" and fault.retryable

    def test_classify_by_stage(self):
        assert (
            classify_error(ValueError("bad ir"), stage="compile").kind
            == "compile"
        )
        assert (
            classify_error(ScheduleError("mismatch"), stage="verify").kind
            == "verify"
        )
        assert (
            classify_error(RuntimeError("boom"), stage=None).kind
            == "unknown"
        )

    def test_describe_carries_provenance(self):
        text = CompileFault(
            message="no such pass", stage="compile", attempts=2
        ).describe()
        assert "compile" in text and "attempts=2" in text


class TestInjectionPlans:
    def test_from_env_grammar(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_TUNE_FAULTS", "crash@2; delay@1=0.5, raise@3:sticky"
        )
        injector = FaultInjector.from_env()
        assert injector.plan == (
            Injection(index=2, action="crash"),
            Injection(index=1, action="delay", value=0.5),
            Injection(index=3, action="raise", sticky=True),
        )

    def test_from_env_absent(self, monkeypatch):
        monkeypatch.delenv("REPRO_TUNE_FAULTS", raising=False)
        assert FaultInjector.from_env() is None

    def test_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_FAULTS", "explode@1")
        with pytest.raises(ValueError, match="explode"):
            FaultInjector.from_env()

    def test_one_shot_fires_on_first_attempt_only(self):
        injector = FaultInjector([Injection(index=1, action="raise")])
        assert injector.for_attempt(1, 1) is not None
        assert injector.for_attempt(1, 2) is None
        assert injector.for_attempt(0, 1) is None

    def test_sticky_fires_every_attempt(self):
        injector = FaultInjector(
            [Injection(index=1, action="delay", sticky=True)]
        )
        assert injector.for_attempt(1, 5) is not None

    def test_crash_is_inert_serially(self):
        injector = FaultInjector([Injection(index=0, action="crash")])
        assert injector.for_attempt(0, 1, serial=True) is None
        assert injector.for_attempt(0, 1, serial=False) is not None


# -- engine deadline ------------------------------------------------------------


def _compiled_matmul():
    module, spec = kernels.matmul(8, 8, 8)
    return api.compile_linalg(module), spec


class TestEngineDeadline:
    def test_fast_path_deadline_fires(self):
        compiled, spec = _compiled_matmul()
        with pytest.raises(DeadlineExceeded):
            api.run_kernel(
                compiled,
                spec.random_arguments(seed=0),
                deadline_seconds=1e-9,
            )

    def test_reference_path_deadline_fires(self):
        compiled, spec = _compiled_matmul()
        memory = TCDM()
        int_args = {}
        for index, array in enumerate(spec.random_arguments(seed=0)):
            base = memory.allocate(array.nbytes)
            memory.write_array(base, array)
            int_args[f"a{index}"] = base
        machine = SnitchMachine(
            compiled.program, memory, deadline_seconds=1e-9
        )
        with pytest.raises(DeadlineExceeded):
            machine.run_reference(compiled.entry, int_args=int_args)

    def test_generous_deadline_changes_nothing(self):
        compiled, spec = _compiled_matmul()
        args = spec.random_arguments(seed=0)
        free = api.run_kernel(compiled, args)
        timed = api.run_kernel(compiled, args, deadline_seconds=600.0)
        assert timed.trace.cycles == free.trace.cycles

    def test_evaluate_config_threads_deadline(self):
        with pytest.raises(DeadlineExceeded):
            evaluate_config(
                "matmul",
                (8, 8, 8),
                ScheduleConfig(),
                deadline_seconds=1e-9,
            )


# -- hardened pool --------------------------------------------------------------

# Pool task functions live at module scope so forked workers resolve
# them cleanly.  Contract: task -> (cycles, fault_json), never raise.


def _ok_task(task):
    payload, _meta = task if isinstance(task, tuple) else (task, None)
    return payload * 10, None


def _crash_once_task(task):
    # First visitor leaves a marker and dies; the retry succeeds.
    marker, _ = task
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("died here")
        os.kill(os.getpid(), signal.SIGKILL)
    return 99, None


def _crash_in_worker_task(task):
    # Dies in a worker process, succeeds in the parent: the pool can
    # only finish this batch by degrading to serial.
    if multiprocessing.parent_process() is not None:
        os.kill(os.getpid(), signal.SIGKILL)
    return 7, None


def _sleep_task(task):
    seconds, _ = task
    time.sleep(seconds)
    return 1, None


def _triples(payloads):
    return [
        (seq, f"task-{seq}", payload)
        for seq, payload in enumerate(payloads)
    ]


class TestHardenedPool:
    def test_serial_map_preserves_order(self):
        with HardenedPool(_ok_task, PoolConfig(workers=1)) as pool:
            results = pool.map(_triples([3, 1, 2]))
        assert results == [(30, None), (10, None), (20, None)]

    def test_parallel_map_matches_serial(self):
        with HardenedPool(_ok_task, PoolConfig(workers=4)) as pool:
            results = pool.map(_triples(list(range(8))))
        assert results == [(i * 10, None) for i in range(8)]

    def test_worker_crash_is_retried_and_pool_respawns(self, tmp_path):
        marker = str(tmp_path / "crashed")
        config = PoolConfig(workers=2, retries=2, backoff=0.01)
        with HardenedPool(_crash_once_task, config) as pool:
            results = pool.map(
                [(0, "victim", marker), (1, "bystander", marker)]
            )
        assert all(cycles == 99 for cycles, _ in results)
        assert all(fault is None for _, fault in results)
        assert any("respawn" in event for event in pool.events)
        assert any("retry" in event for event in pool.events)

    def test_deadline_watchdog_kills_and_records_timeout(self):
        config = PoolConfig(workers=2, deadline=0.3, retries=0)
        start = time.monotonic()
        with HardenedPool(_sleep_task, config) as pool:
            results = pool.map(
                [(0, "quick", 0.0), (1, "hung", 30.0)]
            )
        elapsed = time.monotonic() - start
        assert elapsed < 10.0  # nowhere near the 30s hang
        assert results[0] == (1, None)
        cycles, fault = results[1]
        assert cycles is None
        assert Fault.from_json(fault).kind == "timeout"
        assert any("watchdog" in event for event in pool.events)

    def test_repeated_pool_death_degrades_to_serial(self):
        config = PoolConfig(
            workers=2, retries=3, backoff=0.01, respawn_limit=1
        )
        with HardenedPool(_crash_in_worker_task, config) as pool:
            results = pool.map(_triples([None] * 4))
        assert results == [(7, None)] * 4
        assert pool.degraded
        assert any("degrading to serial" in e for e in pool.events)

    def test_no_fork_means_serial_from_the_start(self, monkeypatch):
        from repro.tune import workers as workers_mod

        monkeypatch.setattr(workers_mod, "_FORK_AVAILABLE", False)
        with HardenedPool(_ok_task, PoolConfig(workers=4)) as pool:
            assert pool.degraded and not pool.parallel
            results = pool.map(_triples([1, 2]))
        assert results == [(10, None), (20, None)]


# -- crash-safe cache -----------------------------------------------------------


class TestCrashSafeCache:
    def test_schema_1_migrates_on_load(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(
            json.dumps(
                {"schema": 1, "entries": {"good": 42, "bad": None}}
            )
        )
        cache = TuneCache(path)
        assert cache.lookup("good") == (True, 42, None)
        hit, cycles, fault = cache.lookup("bad")
        assert hit and cycles is None
        assert fault.kind == "unknown" and "schema-1" in fault.message
        # A save upgrades the file: schema 2, no bare nulls.
        cache.put("new", 7)
        cache.save()
        stored = json.loads(path.read_text())
        assert stored["schema"] == TuneCache.SCHEMA
        assert None not in stored["entries"].values()
        assert stored["entries"]["bad"]["fault"]["kind"] == "unknown"

    def test_corrupted_bytes_quarantine(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = TuneCache(path)
        cache.put("k", 5)
        cache.save()
        FaultInjector.corrupt_file(path)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            reopened = TuneCache(path)
        assert len(reopened) == 0
        assert path.with_suffix(".json.corrupt").exists()
        assert not path.exists()  # moved aside, not truncated in place

    def test_two_stores_merge_on_save(self, tmp_path):
        path = tmp_path / "cache.json"
        a = TuneCache(path)
        b = TuneCache(path)
        a.put("from-a", 1)
        b.put("from-b", 2)
        a.save()
        b.save()  # must union with a's entries, not clobber them
        merged = TuneCache(path)
        assert merged.lookup("from-a") == (True, 1, None)
        assert merged.lookup("from-b") == (True, 2, None)

    def test_racing_processes_union_their_work(self, tmp_path):
        path = tmp_path / "cache.json"

        def _writer(which):
            cache = TuneCache(path)
            for i in range(20):
                cache.put(f"{which}-{i}", i)
            cache.save()

        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_writer, args=(w,)) for w in ("p", "q")
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=30)
            assert proc.exitcode == 0
        merged = TuneCache(path)
        assert len(merged) == 40

    def test_checkpoint_every_persists_mid_run(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = TuneCache(path, checkpoint_every=2)
        cache.put("k1", 1)
        assert not path.exists()  # below the checkpoint threshold
        cache.put("k2", 2)
        stored = json.loads(path.read_text())["entries"]
        assert stored == {"k1": 1, "k2": 2}


# -- injected faults through a real search --------------------------------------


def _tune(tmp_path, injector, **kwargs):
    defaults = dict(
        kernel="matmul",
        sizes=(4, 4, 4),
        strategy="exhaustive",
        cache=TuneCache(tmp_path / "cache.json"),
        retries=2,
        injector=injector,
    )
    defaults.update(kwargs)
    kernel = defaults.pop("kernel")
    sizes = defaults.pop("sizes")
    return tune_kernel(kernel, sizes, **defaults)


class TestInjectedSearch:
    def test_one_shot_worker_crash_recovers(self, tmp_path):
        injector = FaultInjector([Injection(index=1, action="crash")])
        result = _tune(tmp_path, injector, workers=2)
        assert all(o.valid for o in result.candidates)
        assert result.best.cycles <= result.default_cycles
        assert any("respawn" in event for event in result.events)

    def test_sticky_crash_becomes_structured_fault(self, tmp_path):
        injector = FaultInjector(
            [Injection(index=1, action="crash", sticky=True)]
        )
        result = _tune(tmp_path, injector, workers=2, retries=1)
        failed = [o for o in result.candidates if not o.valid]
        assert len(failed) == 1
        assert failed[0].fault.kind == "worker-crash"
        assert failed[0].fault.attempts == 2  # original + one retry
        # Transient faults are never persisted: a rerun re-measures
        # (and, injector-free, succeeds).
        rerun = _tune(tmp_path, None, workers=1)
        assert all(o.valid for o in rerun.candidates)

    def test_delay_past_deadline_is_timeout(self, tmp_path):
        injector = FaultInjector(
            [Injection(index=2, action="delay", value=60.0, sticky=True)]
        )
        result = _tune(
            tmp_path, injector, workers=1, deadline=0.5, retries=0
        )
        failed = [o for o in result.candidates if not o.valid]
        assert len(failed) == 1
        assert failed[0].fault.kind == "timeout"
        assert result.best.cycles <= result.default_cycles

    def test_raise_is_deterministic_and_cached(self, tmp_path):
        injector = FaultInjector([Injection(index=1, action="raise")])
        result = _tune(tmp_path, injector, workers=1)
        failed = [o for o in result.candidates if not o.valid]
        assert len(failed) == 1
        assert failed[0].fault.kind == "sim"
        assert "injected" in failed[0].fault.message
        # Deterministic faults persist: the rerun serves the failure
        # from cache instead of re-measuring.
        rerun = _tune(tmp_path, None, workers=1)
        cached_failure = [o for o in rerun.candidates if not o.valid]
        assert len(cached_failure) == 1 and cached_failure[0].cached

    def test_interrupt_checkpoints_and_reports_partial(self, tmp_path):
        injector = FaultInjector([Injection(index=2, action="interrupt")])
        with pytest.raises(SearchInterrupted) as info:
            _tune(tmp_path, injector, workers=1)
        partial = info.value.partial
        assert partial is not None and partial.interrupted
        assert partial.best.cycles <= partial.default_cycles
        assert len(partial.candidates) == 2  # measurements 0 and 1
        # The cache was checkpointed: a rerun reuses the two scores.
        rerun = _tune(tmp_path, None, workers=1)
        assert rerun.cache_hits == 2


class TestTunerCLIExitCodes:
    def test_interrupt_exits_130(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TUNE_FAULTS", "interrupt@2")
        code = kernel_tuner.main(
            ["matmul", "4", "4", "4", "--cache", str(tmp_path / "c.json")]
        )
        assert code == 130
        captured = capsys.readouterr()
        assert "interrupted" in captured.err
        assert "partial" in captured.out  # best-so-far report printed

    def test_no_baseline_exits_3(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TUNE_FAULTS", "raise@0:sticky")
        code = kernel_tuner.main(
            ["matmul", "4", "4", "4", "--cache", str(tmp_path / "c.json")]
        )
        assert code == 3
        assert "tuning failed" in capsys.readouterr().err

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as info:
            kernel_tuner.main(["--help"])
        assert info.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes" in out and "130" in out and "143" in out


# -- the chaos property ---------------------------------------------------------

_CHAOS_ACTIONS = ("crash", "delay", "raise")


@pytest.mark.chaos
class TestChaosProperty:
    """Any plan of injected faults, any pool width: the search still
    terminates promptly, the winner never loses to the default, and
    every failure is a structured taxonomy fault."""

    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(
        plan=st.dictionaries(
            keys=st.sampled_from([1, 2, 3]),
            values=st.sampled_from(_CHAOS_ACTIONS),
            max_size=3,
        ),
        workers=st.sampled_from(sorted({1, CHAOS_WORKERS})),
    )
    def test_search_survives_arbitrary_fault_plans(self, plan, workers):
        # Non-retryable "raise" stays off measurement 0: the default
        # must keep its baseline (crash/delay are one-shot + retried,
        # so they recover anywhere).
        injector = FaultInjector(
            [
                Injection(index=index, action=action, value=60.0)
                for index, action in sorted(plan.items())
            ]
        )
        start = time.monotonic()
        result = tune_kernel(
            "matmul",
            (4, 4, 4),
            workers=workers,
            deadline=CHAOS_DEADLINE,
            retries=2,
            injector=injector,
        )
        elapsed = time.monotonic() - start
        # Terminates within a small multiple of the deadline budget:
        # 4 candidates x (1 + retries) attempts, plus slack.
        assert elapsed < 4 * 3 * CHAOS_DEADLINE + 30.0
        # The winner never regresses past the untuned default.
        assert result.best.cycles <= result.default_cycles
        # Every failure is structured taxonomy, never a bare null.
        for outcome in result.candidates:
            if not outcome.valid:
                assert isinstance(outcome.fault, Fault)
                assert outcome.fault.kind in FAULT_KINDS
