"""Tests for the pass registry: auto-registration, options, build."""

import pytest

from repro.ir.pass_manager import ModulePass
from repro.ir.pipeline_spec import PassSpec, PipelineSpecError
from repro.transforms.registry import PASS_REGISTRY, PassRegistry


#: Every pass the transforms package ships, by canonical name.
EXPECTED_PASSES = {
    "allocate-registers",
    "canonicalize",
    "convert-linalg-to-memref-stream",
    "convert-to-riscv",
    "dce",
    "eliminate-identity-moves",
    "fuse-fill",
    "fuse-fmadd",
    "lower-generic-to-loops",
    "lower-generic-to-pointer-loops",
    "lower-riscv-scf",
    "lower-snitch-stream",
    "lower-to-snitch",
    "scalar-replacement",
    "unroll-and-jam",
    "verify-streams",
}


class TestAutoRegistration:
    def test_every_transform_pass_registered(self):
        assert EXPECTED_PASSES <= set(PASS_REGISTRY.names())

    def test_no_unnamed_pass_registered(self):
        assert "unnamed-pass" not in PASS_REGISTRY

    def test_all_names_canonical_kebab_case(self):
        import re

        for name in PASS_REGISTRY.names():
            assert re.fullmatch(r"[a-z][a-z0-9]*(-[a-z0-9]+)*", name), (
                f"{name!r} is not kebab-case"
            )

    def test_repro_package_subclass_auto_registers(self):
        # Simulate a pass defined inside the package: auto-registration
        # is keyed on the class's module.
        cls = type(
            "ProbeRegistrationPass",
            (ModulePass,),
            {
                "__module__": "repro.transforms.probe",
                "__doc__": "Probe.",
                "name": "probe-registration",
                "run": lambda self, module: None,
            },
        )
        try:
            assert "probe-registration" in PASS_REGISTRY
            assert PASS_REGISTRY.get("probe-registration").cls is cls
        finally:
            PASS_REGISTRY._entries.pop("probe-registration")

    def test_outside_package_subclass_not_auto_registered(self):
        class ExternalPass(ModulePass):
            """External passes must opt in via register_pass."""

            name = "external-probe"

            def run(self, module):
                pass

        assert "external-probe" not in PASS_REGISTRY

    def test_duplicate_name_rejected_at_class_definition(self):
        with pytest.raises(ValueError, match="duplicate pass name"):
            type(
                "ImpostorDcePass",
                (ModulePass,),
                {
                    "__module__": "repro.transforms.impostor",
                    "name": "dce",
                    "run": lambda self, module: None,
                },
            )

    def test_explicit_register_duplicate_rejected(self):
        class ImpostorDcePass(ModulePass):
            name = "dce"

            def run(self, module):
                pass

        with pytest.raises(ValueError, match="duplicate pass name"):
            PASS_REGISTRY.register(ImpostorDcePass)

    def test_nameless_subclass_skipped(self):
        cls = type(
            "Helper",
            (ModulePass,),
            {"__module__": "repro.transforms.helper"},
        )  # inherits "unnamed-pass"; must not register
        assert cls.name == "unnamed-pass"
        assert "unnamed-pass" not in PASS_REGISTRY

    def test_non_kebab_name_rejected(self):
        registry = PassRegistry()

        class BadName(ModulePass):
            name = "camelCase"

            def run(self, module):
                pass

        with pytest.raises(ValueError, match="kebab-case"):
            registry.register(BadName)

    def test_explicit_register_requires_name(self):
        registry = PassRegistry()
        with pytest.raises(ValueError, match="no canonical 'name'"):
            registry.register(type(ModulePass)("Anon", (), {}))


class TestOptionIntrospection:
    def test_unroll_factor_is_int(self):
        factor, dim = PASS_REGISTRY.get("unroll-and-jam").options
        assert factor.name == "factor"
        assert factor.py_name == "factor"
        assert factor.type is int
        assert factor.default is None
        assert not factor.required
        assert dim.name == "dim"
        assert dim.type is int
        assert dim.default is None

    def test_use_frep_is_bool(self):
        (option,) = PASS_REGISTRY.get("lower-to-snitch").options
        assert option.name == "use-frep"
        assert option.type is bool
        assert option.default is True

    def test_optionless_pass(self):
        assert PASS_REGISTRY.get("dce").options == ()

    def test_summary_from_docstring(self):
        assert "latency" in PASS_REGISTRY.get("unroll-and-jam").summary


class TestBuild:
    def test_build_default(self):
        pass_ = PASS_REGISTRY.build(PassSpec("unroll-and-jam"))
        assert pass_.factor is None

    def test_build_with_int_option(self):
        pass_ = PASS_REGISTRY.build(
            PassSpec("unroll-and-jam", {"factor": 4})
        )
        assert pass_.factor == 4

    def test_build_with_bool_option(self):
        pass_ = PASS_REGISTRY.build(
            PassSpec("lower-to-snitch", {"use-frep": False})
        )
        assert pass_.use_frep is False

    def test_int_coerced_from_string(self):
        pass_ = PASS_REGISTRY.build(
            PassSpec("unroll-and-jam", {"factor": "8"})
        )
        assert pass_.factor == 8

    def test_unknown_pass_suggests_and_lists(self):
        with pytest.raises(PipelineSpecError) as info:
            PASS_REGISTRY.build(PassSpec("unroll-and-jamm"))
        message = str(info.value)
        assert "unknown pass 'unroll-and-jamm'" in message
        assert "did you mean unroll-and-jam" in message
        assert "registered passes:" in message

    def test_unknown_option_lists_valid_ones(self):
        with pytest.raises(PipelineSpecError) as info:
            PASS_REGISTRY.build(
                PassSpec("unroll-and-jam", {"factorr": 4})
            )
        message = str(info.value)
        assert "unknown option 'factorr' for pass 'unroll-and-jam'" in (
            message
        )
        assert "valid options: factor" in message

    def test_option_on_optionless_pass(self):
        with pytest.raises(PipelineSpecError, match="takes no options"):
            PASS_REGISTRY.build(PassSpec("dce", {"x": 1}))

    def test_bool_option_type_mismatch(self):
        with pytest.raises(
            PipelineSpecError,
            match="expects a bool .* got 1",
        ):
            PASS_REGISTRY.build(
                PassSpec("lower-to-snitch", {"use-frep": 1})
            )

    def test_int_option_type_mismatch(self):
        with pytest.raises(
            PipelineSpecError, match="expects an int, got 'many'"
        ):
            PASS_REGISTRY.build(
                PassSpec("unroll-and-jam", {"factor": "many"})
            )

    def test_errors_are_value_errors(self):
        with pytest.raises(ValueError):
            PASS_REGISTRY.build(PassSpec("nope"))
