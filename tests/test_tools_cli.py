"""Tests for the command-line kernel compiler."""

import os
import subprocess
import sys

import pytest

from repro.tools import kernel_compiler


class TestArgumentParsing:
    def test_defaults(self):
        args = kernel_compiler.build_argument_parser().parse_args(
            ["matmul", "1", "8", "4"]
        )
        assert args.pipeline == "ours"
        assert not args.run
        assert args.sizes == [1, 8, 4]

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            kernel_compiler.build_argument_parser().parse_args(
                ["fft", "8"]
            )

    def test_wrong_arity_rejected(self):
        with pytest.raises(SystemExit):
            kernel_compiler.compile_kernel(
                "matmul", [8], "ours", None, False
            )


class TestMain:
    def test_compile_only(self, capsys):
        assert kernel_compiler.main(["sum", "4", "4"]) == 0
        out = capsys.readouterr().out
        assert ".globl sum" in out
        assert "frep.o" in out

    def test_run_and_validate(self, capsys):
        code = kernel_compiler.main(
            ["matmul", "1", "16", "4", "--run", "--no-asm"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "numpy check:     OK" in out
        assert "fpu utilization" in out

    def test_compare_pipelines(self, capsys):
        code = kernel_compiler.main(
            ["relu", "8", "8", "--compare", "clang", "--no-asm"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faster than" in out

    def test_show_stages(self, capsys):
        code = kernel_compiler.main(
            ["matvec", "5", "20", "--show-stages", "--no-asm"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "after convert-linalg-to-memref-stream" in out
        assert "memref_stream.generic" in out

    def test_unroll_override(self, capsys):
        kernel_compiler.main(
            ["matmul", "1", "16", "4", "--unroll-factor", "2"]
        )
        out = capsys.readouterr().out
        assert out.count("fmadd.d") == 2

    def test_missing_kernel_rejected(self):
        with pytest.raises(SystemExit):
            kernel_compiler.main([])


class TestPipelineSpecs:
    def test_raw_spec_accepted(self, capsys):
        from repro.transforms.pipelines import NAMED_PIPELINES

        code = kernel_compiler.main(
            [
                "sum", "4", "4",
                "--pipeline", NAMED_PIPELINES["table3-streams"],
                "--run", "--no-asm",
            ]
        )
        assert code == 0
        assert "numpy check:     OK" in capsys.readouterr().out

    def test_spec_with_option_accepted(self, capsys):
        spec = (
            "convert-linalg-to-memref-stream,fuse-fill,"
            "scalar-replacement,unroll-and-jam{factor=2},"
            "lower-to-snitch,verify-streams,fuse-fmadd,"
            "lower-snitch-stream,canonicalize,dce,allocate-registers,"
            "lower-riscv-scf,eliminate-identity-moves"
        )
        code = kernel_compiler.main(
            ["matmul", "1", "16", "4", "--pipeline", spec]
        )
        assert code == 0
        assert capsys.readouterr().out.count("fmadd.d") == 2

    def test_bad_pipeline_rejected_with_message(self, capsys):
        with pytest.raises(SystemExit) as info:
            kernel_compiler.main(
                ["sum", "4", "4", "--pipeline", "unroll-and-jamm"]
            )
        assert "unknown pipeline" in str(info.value)
        assert "did you mean unroll-and-jam" in str(info.value)

    def test_list_pipelines(self, capsys):
        from repro.transforms.pipelines import NAMED_PIPELINES

        assert kernel_compiler.main(["--list-pipelines"]) == 0
        out = capsys.readouterr().out
        for name, spec in NAMED_PIPELINES.items():
            assert name in out
            assert spec in out

    def test_print_ir_after_all(self, capsys):
        code = kernel_compiler.main(
            ["sum", "4", "4", "--print-ir-after-all", "--no-asm"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "// -----// IR after convert-linalg-to-memref-stream" in (
            out
        )
        assert "// -----// IR after eliminate-identity-moves" in out


class TestSmoke:
    def test_module_invocation_compiles_and_runs(self):
        """CI smoke: the documented command line works end to end."""
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(__file__), "..", "src"
        )
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath(src)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.tools.kernel_compiler",
                "matmul", "1", "200", "5",
                "--pipeline", "ours", "--run", "--no-asm",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "numpy check:     OK" in proc.stdout
