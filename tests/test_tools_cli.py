"""Tests for the command-line kernel compiler."""

import pytest

from repro.tools import kernel_compiler


class TestArgumentParsing:
    def test_defaults(self):
        args = kernel_compiler.build_argument_parser().parse_args(
            ["matmul", "1", "8", "4"]
        )
        assert args.pipeline == "ours"
        assert not args.run
        assert args.sizes == [1, 8, 4]

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            kernel_compiler.build_argument_parser().parse_args(
                ["fft", "8"]
            )

    def test_wrong_arity_rejected(self):
        with pytest.raises(SystemExit):
            kernel_compiler.compile_kernel(
                "matmul", [8], "ours", None, False
            )


class TestMain:
    def test_compile_only(self, capsys):
        assert kernel_compiler.main(["sum", "4", "4"]) == 0
        out = capsys.readouterr().out
        assert ".globl sum" in out
        assert "frep.o" in out

    def test_run_and_validate(self, capsys):
        code = kernel_compiler.main(
            ["matmul", "1", "16", "4", "--run", "--no-asm"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "numpy check:     OK" in out
        assert "fpu utilization" in out

    def test_compare_pipelines(self, capsys):
        code = kernel_compiler.main(
            ["relu", "8", "8", "--compare", "clang", "--no-asm"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faster than" in out

    def test_show_stages(self, capsys):
        code = kernel_compiler.main(
            ["matvec", "5", "20", "--show-stages", "--no-asm"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "after convert-linalg-to-memref-stream" in out
        assert "memref_stream.generic" in out

    def test_unroll_override(self, capsys):
        kernel_compiler.main(
            ["matmul", "1", "16", "4", "--unroll-factor", "2"]
        )
        out = capsys.readouterr().out
        assert out.count("fmadd.d") == 2
