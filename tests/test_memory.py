"""Tests for the TCDM model."""

import numpy as np
import pytest

from repro.snitch.memory import TCDM, TCDMError


class TestAllocation:
    def test_alignment(self):
        mem = TCDM()
        a = mem.allocate(10, align=8)
        b = mem.allocate(8, align=8)
        assert a % 8 == 0 and b % 8 == 0
        assert b >= a + 10

    def test_exhaustion(self):
        mem = TCDM(size=64)
        with pytest.raises(TCDMError):
            mem.allocate(128)

    def test_address_zero_never_allocated(self):
        assert TCDM().allocate(8) != 0

    def test_reset(self):
        mem = TCDM()
        first = mem.allocate(16)
        mem.reset_allocator()
        assert mem.allocate(16) == first


class TestTypedAccess:
    def test_f64_roundtrip(self):
        mem = TCDM()
        mem.store_f64(16, 3.25)
        assert mem.load_f64(16) == 3.25

    def test_f32_roundtrip(self):
        mem = TCDM()
        mem.store_f32(16, 1.5)
        assert mem.load_f32(16) == 1.5

    def test_u32_u64(self):
        mem = TCDM()
        mem.store_u32(8, 0xDEADBEEF)
        assert mem.load_u32(8) == 0xDEADBEEF
        mem.store_u64(16, 2**50)
        assert mem.load_u64(16) == 2**50

    def test_bounds_checked(self):
        mem = TCDM(size=32)
        with pytest.raises(TCDMError):
            mem.load_f64(32)
        with pytest.raises(TCDMError):
            mem.store_f64(-8, 0.0)

    def test_load_u32_straddling_end_raises(self):
        """Regression: ``load_u32`` was the one typed accessor without a
        bounds check — a 4-byte read straddling the end of the TCDM
        silently returned truncated data instead of raising."""
        mem = TCDM(size=32)
        with pytest.raises(TCDMError):
            mem.load_u32(30)
        with pytest.raises(TCDMError):
            mem.load_u32(32)
        with pytest.raises(TCDMError):
            mem.load_u32(-4)
        assert mem.load_u32(28) == 0


class TestNumpyBridge:
    def test_array_roundtrip_2d(self):
        mem = TCDM()
        data = np.arange(12, dtype=np.float64).reshape(3, 4)
        base = mem.allocate(data.nbytes)
        mem.write_array(base, data)
        out = mem.read_array(base, (3, 4), np.float64)
        assert np.array_equal(out, data)

    def test_array_roundtrip_f32(self):
        mem = TCDM()
        data = np.arange(6, dtype=np.float32)
        base = mem.allocate(data.nbytes)
        mem.write_array(base, data)
        assert np.array_equal(
            mem.read_array(base, (6,), np.float32), data
        )

    def test_row_major_layout(self):
        """Element [i][j] sits at base + (i*cols + j) * 8."""
        mem = TCDM()
        data = np.arange(6, dtype=np.float64).reshape(2, 3)
        base = mem.allocate(data.nbytes)
        mem.write_array(base, data)
        assert mem.load_f64(base + (1 * 3 + 2) * 8) == data[1, 2]
