"""Differential property tests for the register allocator.

Strategy: generate random straight-line SSA programs over integer and FP
ops, interpret them twice —

1. at the SSA level (pure Python over values), and
2. as register-allocated assembly on the Snitch machine model —

and require identical results.  Any allocator bug (two overlapping live
ranges sharing a register, a loop group clobbering a live-out init...)
shows up as a numeric mismatch.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend.asm_emitter import emit_function
from repro.backend.register_allocator import (
    RegisterPressureError,
    allocate_registers,
)
from repro.dialects import riscv, riscv_func, riscv_scf
from repro.ir import Builder
from repro.snitch import SnitchMachine, TCDM, assemble
from repro.snitch.machine import bits_to_f64

#: Each step: (kind, lhs pick, rhs pick, constant)
STEP = st.tuples(
    st.sampled_from(["li", "add", "sub", "mul", "addi"]),
    st.integers(0, 10**6),
    st.integers(0, 10**6),
    st.integers(-100, 100),
)


def build_and_interpret(steps):
    """Build the SSA program and compute its expected outputs."""
    fn = riscv_func.FuncOp("prog", riscv_func.abi_arg_types(["int"]))
    builder = Builder.at_end(fn.entry_block)
    values = []  # (ssa value, python value)
    for kind, lhs_pick, rhs_pick, constant in steps:
        if kind == "li" or not values:
            op = builder.insert(riscv.LiOp(constant))
            values.append((op.rd, constant))
            continue
        lhs_value, lhs_num = values[lhs_pick % len(values)]
        rhs_value, rhs_num = values[rhs_pick % len(values)]
        if kind == "add":
            op = builder.insert(riscv.AddOp(lhs_value, rhs_value))
            result = lhs_num + rhs_num
        elif kind == "sub":
            op = builder.insert(riscv.SubOp(lhs_value, rhs_value))
            result = lhs_num - rhs_num
        elif kind == "mul":
            op = builder.insert(riscv.MulOp(lhs_value, rhs_value))
            result = lhs_num * rhs_num
        else:  # addi
            op = builder.insert(riscv.AddiOp(lhs_value, constant))
            result = lhs_num + constant
        values.append((op.rd, result))
    # Store the last few live values so they are observable.
    outputs = values[-4:]
    for slot, (value, _) in enumerate(outputs):
        builder.insert(riscv.SwOp(value, fn.args[0], slot * 4))
    builder.insert(riscv_func.ReturnOp())
    return fn, [num for _, num in outputs]


@settings(max_examples=60, deadline=None)
@given(steps=st.lists(STEP, min_size=1, max_size=18))
def test_integer_programs_match_ssa_semantics(steps):
    fn, expected = build_and_interpret(steps)
    try:
        allocate_registers(fn)
    except RegisterPressureError:
        return  # legitimately over budget: nothing to check
    asm = emit_function(fn)
    memory = TCDM()
    base = memory.allocate(64)
    machine = SnitchMachine(assemble(asm), memory)
    machine.run("prog", int_args={"a0": base})
    got = [
        memory.load_u32(base + slot * 4)
        for slot in range(len(expected))
    ]
    assert got == [v & 0xFFFFFFFF for v in expected]


FSTEP = st.tuples(
    st.sampled_from(["const", "fadd", "fsub", "fmul", "fmax", "fma"]),
    st.integers(0, 10**6),
    st.integers(0, 10**6),
    st.integers(0, 10**6),
    st.integers(-8, 8),
)


def build_float_program(steps):
    fn = riscv_func.FuncOp("prog", riscv_func.abi_arg_types(["int"]))
    builder = Builder.at_end(fn.entry_block)
    values = []

    def constant(value):
        li = builder.insert(riscv.LiOp(value)) if value else None
        source = (
            li.rd
            if li is not None
            else builder.insert(
                riscv.GetRegisterOp(riscv.IntRegisterType("zero"))
            ).result
        )
        op = builder.insert(riscv.FCvtDWOp(source))
        return op.results[0], float(value)

    for kind, a_pick, b_pick, c_pick, const in steps:
        if kind == "const" or not values:
            values.append(constant(const))
            continue
        a_val, a_num = values[a_pick % len(values)]
        b_val, b_num = values[b_pick % len(values)]
        if kind == "fadd":
            op = builder.insert(riscv.FAddDOp(a_val, b_val))
            result = a_num + b_num
        elif kind == "fsub":
            op = builder.insert(riscv.FSubDOp(a_val, b_val))
            result = a_num - b_num
        elif kind == "fmul":
            op = builder.insert(riscv.FMulDOp(a_val, b_val))
            result = a_num * b_num
        elif kind == "fmax":
            op = builder.insert(riscv.FMaxDOp(a_val, b_val))
            result = max(a_num, b_num)
        else:  # fma
            c_val, c_num = values[c_pick % len(values)]
            op = builder.insert(riscv.FMAddDOp(a_val, b_val, c_val))
            result = a_num * b_num + c_num
        values.append((op.results[0], result))
    outputs = values[-3:]
    for slot, (value, _) in enumerate(outputs):
        builder.insert(riscv.FSdOp(value, fn.args[0], slot * 8))
    builder.insert(riscv_func.ReturnOp())
    return fn, [num for _, num in outputs]


@settings(max_examples=60, deadline=None)
@given(steps=st.lists(FSTEP, min_size=1, max_size=14))
def test_float_programs_match_ssa_semantics(steps):
    fn, expected = build_float_program(steps)
    try:
        allocate_registers(fn)
    except RegisterPressureError:
        return
    asm = emit_function(fn)
    memory = TCDM()
    base = memory.allocate(64)
    machine = SnitchMachine(assemble(asm), memory)
    machine.run("prog", int_args={"a0": base})
    got = [
        memory.load_f64(base + slot * 8) for slot in range(len(expected))
    ]
    np.testing.assert_allclose(got, expected, rtol=1e-12)


@settings(max_examples=30, deadline=None)
@given(
    trip_counts=st.lists(st.integers(1, 5), min_size=1, max_size=3),
    increments=st.lists(st.integers(-4, 9), min_size=1, max_size=3),
)
def test_nested_accumulating_loops(trip_counts, increments):
    """Loop-carried allocation: nested rv_scf loops accumulate an
    integer; registers must carry the value across arbitrary nests."""
    depth = min(len(trip_counts), len(increments))
    fn = riscv_func.FuncOp("prog", riscv_func.abi_arg_types(["int"]))
    builder = Builder.at_end(fn.entry_block)
    acc = builder.insert(riscv.LiOp(1)).rd

    def emit(level, builder, acc):
        if level == depth:
            return builder.insert(
                riscv.AddiOp(acc, increments[0])
            ).rd
        lb = builder.insert(riscv.LiOp(0)).rd
        ub = builder.insert(riscv.LiOp(trip_counts[level])).rd
        step = builder.insert(riscv.LiOp(1)).rd
        loop = riscv_scf.ForOp(lb, ub, step, [acc])
        builder.insert(loop)
        inner = Builder.at_end(loop.body_block)
        new = emit(level + 1, inner, loop.body_iter_args[0])
        inner.insert(riscv_scf.YieldOp([new]))
        return loop.results[0]

    final = emit(0, builder, acc)
    builder.insert(riscv.SwOp(final, fn.args[0], 0))
    builder.insert(riscv_func.ReturnOp())

    expected = 1
    total_trips = 1
    for level in range(depth):
        total_trips *= trip_counts[level]
    expected += total_trips * increments[0]

    from repro.transforms.lower_riscv_scf import LowerRiscvScfPass
    from repro.dialects.builtin import ModuleOp

    module = ModuleOp([fn])
    allocate_registers(fn)
    LowerRiscvScfPass().run(module)
    asm = emit_function(fn)
    memory = TCDM()
    base = memory.allocate(8)
    machine = SnitchMachine(assemble(asm), memory)
    machine.run("prog", int_args={"a0": base})
    assert memory.load_u32(base) == expected & 0xFFFFFFFF
