"""Property test: tuned-schedule pipeline specs round-trip.

Any legal (interchange permutation, unroll factor) option set must
survive ``parse -> print -> parse`` of the textual pipeline-spec
language unchanged, and compiling the same kernel from the original
and the re-printed spec must produce byte-identical assembly — a tuned
schedule is exactly as reproducible as the spec string that names it.
"""

from hypothesis import given, settings, strategies as st

from repro import api, kernels
from repro.ir.pipeline_spec import (
    parse_pipeline_spec,
    print_pipeline_spec,
)
from repro.transforms.interchange import (
    format_permutation,
    legal_interchange_permutations,
)
from repro.transforms.pipelines import scheduled_pipeline_spec
from repro.transforms.unroll_and_jam import legal_unroll_factors

#: Kernel shapes small enough to compile by the dozen, with at least
#: one reduction (so the unroll axis is live) and 2+ parallel dims
#: (so the interchange axis is live).
_SHAPES = st.sampled_from(
    [
        ("matmul", (2, 4, 4)),
        ("matmul", (4, 4, 8)),
        ("matmul", (1, 8, 8)),
        ("matmul_t", (2, 4, 6)),
        ("conv3x3", (4, 4)),
        ("max_pool3x3", (4, 4)),
    ]
)

_BUILDERS = {
    "matmul": kernels.matmul,
    "matmul_t": kernels.matmul_transposed,
    "conv3x3": kernels.conv3x3,
    "max_pool3x3": kernels.max_pool3x3,
}

#: Iterator kinds per kernel family (post-conversion canonical order).
_KINDS = {
    "matmul": ["parallel", "parallel", "reduction"],
    "matmul_t": ["parallel", "parallel", "reduction"],
    "conv3x3": ["parallel", "parallel", "reduction", "reduction"],
    "max_pool3x3": ["parallel", "parallel", "reduction", "reduction"],
}


@st.composite
def _legal_option_sets(draw):
    """(kernel, sizes, permutation | None, factor | None)."""
    kernel, sizes = draw(_SHAPES)
    kinds = _KINDS[kernel]
    permutation = draw(
        st.one_of(
            st.none(),
            st.sampled_from(legal_interchange_permutations(kinds)),
        )
    )
    # The innermost parallel dim of the (possibly permuted) order is
    # what unroll-and-jam splits; any exact divisor is legal.
    order = permutation or tuple(range(len(kinds)))
    inner_parallel = max(
        new for new, old in enumerate(order) if kinds[old] == "parallel"
    )
    bounds = {
        "matmul": lambda s: (s[0], s[2], s[1]),
        "matmul_t": lambda s: (s[0], s[2], s[1]),
        "conv3x3": lambda s: (s[0], s[1], 3, 3),
        "max_pool3x3": lambda s: (s[0], s[1], 3, 3),
    }[kernel](sizes)
    bound = bounds[order[inner_parallel]]
    factor = draw(
        st.one_of(
            st.none(), st.sampled_from(legal_unroll_factors(bound) or [1])
        )
    )
    return kernel, sizes, permutation, factor


@given(_legal_option_sets())
@settings(max_examples=25, deadline=None)
def test_legal_schedule_specs_round_trip(option_set):
    kernel, sizes, permutation, factor = option_set
    spec_text = scheduled_pipeline_spec(
        permutation=(
            format_permutation(permutation)
            if permutation is not None
            else None
        ),
        unroll_factor=factor,
    )
    parsed = parse_pipeline_spec(spec_text)
    printed = print_pipeline_spec(parsed)
    assert parse_pipeline_spec(printed) == parsed
    # The canonical print is stable (print . parse is idempotent).
    assert print_pipeline_spec(parse_pipeline_spec(printed)) == printed

    builder = _BUILDERS[kernel]
    module_a, _ = builder(*sizes)
    module_b, _ = builder(*sizes)
    asm_original = api.compile_linalg(module_a, pipeline=spec_text).asm
    asm_reprinted = api.compile_linalg(module_b, pipeline=printed).asm
    assert asm_original == asm_reprinted
