"""Tests for the compile-and-tune service: content-addressed store,
batch server, wire protocol, CLI, and the long-lived-process cache
knobs (engine decode cache, network layer memo, tune-cache hygiene).
"""

import json
import multiprocessing
import os
import subprocess
import threading
import time
from pathlib import Path

import pytest

from repro import api, kernels
from repro.compiler import CompiledKernel, Compiler
from repro.kernels import lowlevel, networks
from repro.kernels.builders import KERNEL_BUILDERS
from repro.service import (
    ArtifactStore,
    CompileServer,
    ServiceClient,
    ServiceRequest,
    StoreError,
    serve_forever,
)
from repro.service.server import request_key
from repro.service.store import compile_key, content_key
from repro.snitch import engine
from repro.tools import kernel_service
from repro.tune import TuneCache, evaluate_config, tune_kernel
from repro.tune.schedule import ScheduleConfig
from repro.tune.workers import HardenedPool, PoolConfig

#: Table 1 kernels at small, fast shapes.
TABLE1 = (
    ("fill", (2, 4)),
    ("sum", (2, 4)),
    ("relu", (2, 4)),
    ("conv3x3", (4, 4)),
    ("max_pool3x3", (4, 4)),
    ("sum_pool3x3", (4, 4)),
    ("matmul", (2, 3, 4)),
    ("matmul_t", (2, 3, 4)),
    ("matvec", (2, 4)),
)


def _dead_pid() -> int:
    """A pid guaranteed to be dead (a just-reaped child)."""
    child = subprocess.Popen(["true"])
    child.wait()
    return child.pid


# -- content keys ---------------------------------------------------------------


class TestContentKey:
    def test_deterministic(self):
        assert content_key("a", "b", 1) == content_key("a", "b", 1)

    def test_length_prefixing_prevents_concat_collisions(self):
        assert content_key("ab", "c") != content_key("a", "bc")

    def test_non_string_parts_canonicalized(self):
        assert content_key({"b": 1, "a": 2}) == content_key(
            {"a": 2, "b": 1}
        )

    def test_compile_key_includes_engine_version(self):
        assert compile_key("m", "p", 1) != compile_key("m", "p", 2)


# -- the artifact store ---------------------------------------------------------


class TestArtifactStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = content_key("hello")
        payload = {"cycles": 42, "nested": {"a": [1, 2]}}
        path = store.put("cycles", key, payload)
        assert path.is_file()
        assert store.get("cycles", key) == payload
        assert store.contains("cycles", key)
        stats = store.stats()
        assert stats["hits"] == 1 and stats["puts"] == 1
        assert stats["entries"] == 1

    def test_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get("cycles", content_key("nope")) is None
        assert store.stats()["misses"] == 1

    def test_bad_kind_and_key_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(StoreError):
            store.put("../evil", content_key("x"), {})
        with pytest.raises(StoreError):
            store.put("kernel", "short", {})
        with pytest.raises(StoreError):
            store.put("kernel", content_key("x"), "not a dict")

    def test_corrupt_entry_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = content_key("x")
        path = store.put("kernel", key, {"asm": "nop"})
        text = path.read_text().replace("nop", "pwn")
        path.write_text(text)
        with pytest.warns(RuntimeWarning, match="integrity"):
            assert store.get("kernel", key) is None
        assert not path.exists()
        assert path.with_suffix(".json.corrupt").exists()
        assert store.stats()["quarantined"] == 1

    def test_undecodable_entry_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = content_key("x")
        path = store.put("kernel", key, {"asm": "nop"})
        path.write_text("{truncated")
        with pytest.warns(RuntimeWarning, match="undecodable"):
            assert store.get("kernel", key) is None

    def test_lru_eviction_under_cap(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys = [content_key(str(i)) for i in range(4)]
        for i, key in enumerate(keys):
            store.put("cycles", key, {"i": i})
            time.sleep(0.01)  # distinct mtimes
        store.get("cycles", keys[0])  # refresh the oldest
        entry_bytes = store.stats()["bytes"] // 4
        report = store.gc(max_bytes=entry_bytes * 2)
        assert report["evicted"] == 2
        # The touched entry survived; the stale middle ones went.
        assert store.contains("cycles", keys[0])
        assert store.contains("cycles", keys[3])
        assert not store.contains("cycles", keys[1])
        assert store.stats()["evictions"] == 2

    def test_put_cap_evicts_automatically(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes=1)
        store.put("cycles", content_key("a"), {"v": 1})
        time.sleep(0.01)
        store.put("cycles", content_key("b"), {"v": 2})
        assert store.stats()["entries"] <= 1

    def test_gc_sweeps_dead_writer_tmp(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = content_key("x")
        path = store.put("cycles", key, {"v": 1})
        stale = path.parent / f"{key}.json.{_dead_pid()}.tmp"
        stale.write_text("{half a write")
        live = path.parent / f"{key}.json.{os.getpid()}.tmp"
        live.write_text("mine")
        store.gc()
        assert not stale.exists()
        assert live.exists()  # live writers are left alone
        live.unlink()

    def test_verify_all_counts_corruption(self, tmp_path):
        store = ArtifactStore(tmp_path)
        good = content_key("good")
        bad = content_key("bad")
        store.put("cycles", good, {"v": 1})
        path = store.put("cycles", bad, {"v": 2})
        path.write_text(path.read_text().replace('"v": 2', '"v": 3'))
        assert store.verify_all() == {"ok": 1, "corrupt": 1}


# -- CompiledKernel round trip --------------------------------------------------


class TestCompiledKernelRoundTrip:
    @pytest.mark.parametrize("kernel,sizes", TABLE1)
    def test_byte_identical_asm_and_cycles(self, kernel, sizes):
        builder, _arity = KERNEL_BUILDERS[kernel]
        module, spec = builder(*sizes)
        fresh = api.compile_linalg(module)
        back = CompiledKernel.from_json(
            json.loads(json.dumps(fresh.to_json()))
        )
        assert back.rehydrated
        assert back.asm == fresh.asm
        assert back.entry == fresh.entry
        assert back.pass_timings == fresh.pass_timings
        assert back.pass_stats == fresh.pass_stats
        args = spec.random_arguments(seed=0)
        cycles_fresh = api.run_kernel(fresh, args).trace.cycles
        cycles_back = api.run_kernel(
            back, spec.random_arguments(seed=0)
        ).trace.cycles
        assert cycles_fresh == cycles_back

    def test_register_usage_unavailable_when_rehydrated(self):
        module, _ = kernels.sum_kernel(2, 4)
        fresh = api.compile_linalg(module)
        back = CompiledKernel.from_json(fresh.to_json())
        with pytest.raises(ValueError, match="rehydrated"):
            back.register_usage()

    def test_malformed_artifact_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            CompiledKernel.from_json({"entry": "f"})


# -- the api store fast path ----------------------------------------------------


class TestApiStoreFastPath:
    def test_linalg_miss_then_hit(self, tmp_path):
        store = ArtifactStore(tmp_path)
        module, spec = kernels.matmul(2, 3, 4)
        first = api.compile_linalg(module, store=store)
        assert not first.rehydrated
        module2, _ = kernels.matmul(2, 3, 4)
        second = api.compile_linalg(module2, store=store)
        assert second.rehydrated
        assert second.asm == first.asm
        args = spec.random_arguments(seed=3)
        run = api.run_kernel(second, args)
        expected = spec.reference(*args)
        import numpy as np

        for got, want in zip(run.arrays, expected):
            if want is not None:
                assert np.allclose(got, want, atol=1e-8)

    def test_distinct_pipelines_get_distinct_keys(self, tmp_path):
        store = ArtifactStore(tmp_path)
        module, _ = kernels.matmul(2, 3, 4)
        api.compile_linalg(module, store=store)
        module2, _ = kernels.matmul(2, 3, 4)
        other = api.compile_linalg(
            module2, pipeline="table3-frep", store=store
        )
        assert not other.rehydrated  # different spec, different key
        assert store.stats()["entries"] == 2

    def test_snapshots_bypass_store(self, tmp_path):
        store = ArtifactStore(tmp_path)
        module, _ = kernels.sum_kernel(2, 4)
        api.compile_linalg(module, store=store)
        module2, _ = kernels.sum_kernel(2, 4)
        snapped = api.compile_linalg(
            module2, store=store, snapshots=True
        )
        assert not snapped.rehydrated
        assert snapped.snapshots

    def test_lowlevel_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        module, spec = lowlevel.lowlevel_sum_f32(2, 4)
        first = api.compile_lowlevel(module, spec.name, store=store)
        module2, _ = lowlevel.lowlevel_sum_f32(2, 4)
        second = api.compile_lowlevel(module2, spec.name, store=store)
        assert second.rehydrated
        assert second.asm == first.asm
        assert second.entry == spec.name


# -- the batch server -----------------------------------------------------------


class TestCompileServer:
    def test_submit_compile_then_store_hit(self, tmp_path):
        with CompileServer(ArtifactStore(tmp_path)) as server:
            request = ServiceRequest("compile", "sum", (2, 4))
            first = server.submit(request)
            assert first.ok and first.source == "computed"
            assert "frep.o" in first.kernel().asm
            second = server.submit(request)
            assert second.source == "store"
            assert second.payload == first.payload

    def test_measure_matches_direct_oracle(self, tmp_path):
        config = ScheduleConfig(unroll_factor=2)
        with CompileServer(ArtifactStore(tmp_path)) as server:
            result = server.submit(
                ServiceRequest(
                    "measure", "matmul", (2, 3, 4), config=config
                )
            )
            assert result.ok
        direct = evaluate_config("matmul", (2, 3, 4), config, seed=0)
        assert result.payload["cycles"] == direct

    def test_batch_dedups_and_reports_faults(self, tmp_path):
        with CompileServer(ArtifactStore(tmp_path)) as server:
            requests = [
                ServiceRequest("compile", "relu", (2, 4)),
                ServiceRequest("compile", "relu", (2, 4)),
                ServiceRequest("compile", "fft", (8,)),
                ServiceRequest("measure", "relu", (2, 4)),
            ]
            results = server.batch(requests)
            assert len(results) == 4
            assert results[0].ok and results[1].ok
            assert results[0].key == results[1].key
            assert results[0].payload == results[1].payload
            assert not results[2].ok
            assert results[2].fault is not None
            assert results[2].source == "failed"
            assert results[3].ok
            counters = server.stats()["counters"]
            assert counters["deduped_in_batch"] == 1
            assert counters["computed"] == 2  # relu compile + measure
            assert counters["faults"] == 1

    def test_compile_key_shared_with_api_fast_path(self, tmp_path):
        store = ArtifactStore(tmp_path)
        module, _ = kernels.matmul(2, 3, 4)
        api.compile_linalg(module, store=store)
        with CompileServer(store) as server:
            result = server.submit(
                ServiceRequest("compile", "matmul", (2, 3, 4))
            )
            assert result.source == "store"

    def test_request_json_round_trip(self):
        request = ServiceRequest(
            "measure",
            "matmul",
            (2, 3, 4),
            config=ScheduleConfig(permutation=(1, 0, 2), num_cores=2),
            seed=7,
            validate=False,
        )
        assert ServiceRequest.from_json(request.to_json()) == request
        with pytest.raises(StoreError):
            ServiceRequest.from_json({"kind": "compile"})
        with pytest.raises(StoreError):
            ServiceRequest("decompile", "sum", (2, 4))

    def test_result_json_reports_fault(self, tmp_path):
        with CompileServer(ArtifactStore(tmp_path)) as server:
            [result] = server.batch(
                [ServiceRequest("compile", "fft", (8,))]
            )
        data = result.to_json()
        assert data["fault"]["kind"]
        assert data["payload"] is None
        with pytest.raises(StoreError):
            result.kernel()

    def test_single_flight_threads_share_one_compute(self, tmp_path):
        with CompileServer(ArtifactStore(tmp_path)) as server:
            request = ServiceRequest("compile", "conv3x3", (4, 4))
            barrier = threading.Barrier(4)
            results = []

            def hammer():
                barrier.wait()
                results.append(server.submit(request))

            threads = [
                threading.Thread(target=hammer) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(r.ok for r in results)
            payloads = {json.dumps(r.payload) for r in results}
            assert len(payloads) == 1
            counters = server.stats()["counters"]
            assert counters["computed"] == 1
            assert (
                counters["joined_inflight"] + counters["store_hits"]
                == 3
            )

    def test_stats_exposes_cache_sizes(self, tmp_path):
        with CompileServer(ArtifactStore(tmp_path)) as server:
            stats = server.stats()
        assert "decode_programs" in stats["caches"]
        assert "layer_memo" in stats["caches"]
        assert stats["pool"]["workers"] == 1
        assert "store" in stats


def _race_batch_worker(store_dir, shapes, queue):
    store = ArtifactStore(store_dir)
    server = CompileServer(store)
    try:
        requests = []
        for kernel, sizes in shapes:
            requests.append(ServiceRequest("compile", kernel, sizes))
            requests.append(ServiceRequest("measure", kernel, sizes))
        results = server.batch(requests)
        queue.put([result.ok for result in results])
    finally:
        server.close()


class TestConcurrentStoreAccess:
    def test_two_processes_racing_batches(self, tmp_path):
        """Satellite drill: two processes batch overlapping requests
        over one store directory -> consistent store, zero corrupt
        entries, unioned artifacts."""
        context = multiprocessing.get_context("fork")
        shared = list(TABLE1[:4])
        left = shared + [("matmul", (2, 3, 4))]
        right = shared + [("matvec", (2, 4))]
        queue = context.Queue()
        workers = [
            context.Process(
                target=_race_batch_worker,
                args=(str(tmp_path), shapes, queue),
            )
            for shapes in (left, right)
        ]
        for worker in workers:
            worker.start()
        outcomes = [queue.get(timeout=120) for _ in workers]
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        assert all(all(flags) for flags in outcomes)
        store = ArtifactStore(tmp_path)
        report = store.verify_all()
        assert report["corrupt"] == 0
        # Union: every distinct request from both processes present.
        for kernel, sizes in left + right:
            for request in (
                ServiceRequest("compile", kernel, sizes),
                ServiceRequest("measure", kernel, sizes),
            ):
                kind, key = request_key(request)
                assert store.contains(kind, key), request.label()


# -- wire protocol --------------------------------------------------------------


@pytest.fixture
def live_server(tmp_path):
    socket_path = tmp_path / "service.sock"
    ready = threading.Event()
    thread = threading.Thread(
        target=serve_forever,
        args=(tmp_path / "store", socket_path),
        kwargs={"ready": lambda addr: ready.set()},
        daemon=True,
    )
    thread.start()
    assert ready.wait(30)
    client = ServiceClient(socket_path)
    yield client, socket_path
    try:
        client.shutdown()
    except Exception:
        pass
    thread.join(timeout=30)


class TestWireProtocol:
    def test_full_session(self, live_server):
        client, socket_path = live_server
        assert client.ping()
        result = client.submit(ServiceRequest("compile", "sum", (2, 4)))
        assert result["source"] == "computed"
        results = client.batch(
            [
                ServiceRequest("compile", "sum", (2, 4)),
                ServiceRequest("measure", "sum", (2, 4)),
            ]
        )
        assert results[0]["source"] == "store"
        assert results[1]["payload"]["cycles"] > 0
        stats = client.stats()
        assert stats["counters"]["requests"] == 3
        assert client.gc()["evicted"] == 0

    def test_faults_travel_as_results_not_errors(self, live_server):
        client, _ = live_server
        result = client.submit(ServiceRequest("compile", "fft", (8,)))
        assert result["fault"] is not None
        assert result["payload"] is None

    def test_shutdown_removes_socket(self, live_server):
        client, socket_path = live_server
        client.shutdown()
        deadline = time.monotonic() + 10
        while socket_path.exists() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not socket_path.exists()


# -- fork safety ----------------------------------------------------------------


def _echo_task(task):
    payload, _injection = task
    return payload, None


class TestForkSafety:
    def test_pool_prestart_forks_full_complement(self):
        pool = HardenedPool(_echo_task, PoolConfig(workers=2))
        if not pool.parallel:
            pytest.skip("fork start method unavailable")
        try:
            pool.prestart()
            assert len(pool._workers) == 2
            pool.prestart()  # idempotent
            assert len(pool._workers) == 2
            results = pool.map([(0, "a", 1), (1, "b", 2)])
            assert [result for result, _ in results] == [1, 2]
            assert all(fault is None for _, fault in results)
        finally:
            pool.close()

    def test_server_prestarts_workers(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with CompileServer(store, workers=2) as server:
            if server.pool.parallel:
                assert len(server.pool._workers) == 2

    def test_parallel_batch_does_not_wedge_server(self, tmp_path):
        # Regression: workers used to fork lazily during the first
        # parallel batch, inheriting the accepted connection fd; when
        # client and server share a process (server thread), the
        # client closing that connection never produced EOF and the
        # server hung in recv() instead of accepting new connections.
        socket_path = tmp_path / "service.sock"
        ready = threading.Event()
        thread = threading.Thread(
            target=serve_forever,
            args=(tmp_path / "store", socket_path),
            kwargs={"workers": 2, "ready": lambda addr: ready.set()},
            daemon=True,
        )
        thread.start()
        assert ready.wait(30)
        client = ServiceClient(socket_path)
        results = client.batch(
            [
                ServiceRequest("compile", "sum", (2, 4)),
                ServiceRequest("measure", "sum", (2, 4)),
            ]
        )
        assert [r["source"] for r in results] == ["computed", "computed"]
        answered = threading.Event()
        stats: dict = {}

        def poke():
            stats.update(client.stats())
            answered.set()

        threading.Thread(target=poke, daemon=True).start()
        assert answered.wait(30), (
            "server wedged after a parallel batch "
            "(a forked worker inherited the connection fd)"
        )
        assert stats["counters"]["computed"] == 2
        client.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()


# -- decode cache (satellites 1 + 2) --------------------------------------------


class TestDecodeCache:
    def setup_method(self):
        engine.clear_decode_cache()
        engine.set_decode_cache_limit(None)

    teardown_method = setup_method

    def test_threaded_hammer_decodes_once(self):
        module, _ = kernels.conv3x3(4, 4)
        program = api.compile_linalg(module).program
        before = engine.DECODE_STATS["programs_decoded"]
        barrier = threading.Barrier(8)
        decoded = []

        def hammer():
            barrier.wait()
            decoded.append(engine.decode(program))

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(decoded) == 8
        assert all(d is decoded[0] for d in decoded)
        assert engine.DECODE_STATS["programs_decoded"] == before + 1

    def test_limit_evicts_least_recent_decode(self):
        programs = []
        for sizes in ((2, 4), (2, 5), (2, 6)):
            module, _ = kernels.sum_kernel(*sizes)
            programs.append(api.compile_linalg(module).program)
        for program in programs:
            engine.decode(program)
        assert engine.decode_cache_size() == 3
        engine.set_decode_cache_limit(1)
        assert engine.decode_cache_size() == 1
        assert not hasattr(programs[0], "_decoded")
        assert hasattr(programs[2], "_decoded")
        assert engine.decode_cache_limit() == 1
        before = engine.DECODE_STATS["programs_decoded"]
        engine.decode(programs[0])  # transparently re-decodes
        assert engine.DECODE_STATS["programs_decoded"] == before + 1

    def test_clear_drops_memoized_decodes(self):
        module, _ = kernels.sum_kernel(2, 4)
        program = api.compile_linalg(module).program
        engine.decode(program)
        assert engine.decode_cache_size() >= 1
        engine.clear_decode_cache()
        assert engine.decode_cache_size() == 0
        assert not hasattr(program, "_decoded")

    def test_dead_programs_pruned(self):
        module, _ = kernels.sum_kernel(2, 4)
        program = api.compile_linalg(module).program
        engine.decode(program)
        assert engine.decode_cache_size() >= 1
        del program
        import gc

        gc.collect()  # Program <-> DecodedProgram is a cycle
        assert engine.decode_cache_size() == 0


class TestLayerMemo:
    def setup_method(self):
        networks.clear_layer_cache()
        networks.set_layer_cache_limit(64)

    teardown_method = setup_method

    def test_cross_call_reuse(self):
        layers = networks.nsnet2_layers(width=4)
        first = networks.compile_layers(layers)
        assert networks.layer_cache_size() > 0
        second = networks.compile_layers(layers)
        for (c1, _), (c2, _) in zip(first, second):
            assert c1 is c2  # same compiled kernel object, no rebuild

    def test_pipeline_is_part_of_the_key(self):
        layers = [networks.nsnet2_layers(width=4)[1]]  # one relu
        (ours, _), = networks.compile_layers(layers, pipeline="ours")
        (frep, _), = networks.compile_layers(
            layers, pipeline="table3-frep"
        )
        assert ours is not frep

    def test_limit_and_clear(self):
        layers = networks.nsnet2_layers(width=4)
        networks.compile_layers(layers)
        assert networks.layer_cache_size() > 1
        networks.set_layer_cache_limit(1)
        assert networks.layer_cache_size() == 1
        assert networks.layer_cache_limit() == 1
        networks.clear_layer_cache()
        assert networks.layer_cache_size() == 0
        with pytest.raises(ValueError):
            networks.set_layer_cache_limit(-1)

    def test_run_network_still_validates(self):
        layers = networks.nsnet2_layers(width=4)
        first = networks.run_network("nsnet2", layers, validate=True)
        second = networks.run_network("nsnet2", layers, validate=True)
        assert first.total_cycles == second.total_cycles


# -- tune cache hygiene (satellite 3) -------------------------------------------


class TestTuneCacheCleanup:
    def test_stale_lock_and_tmp_do_not_block_next_run(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = TuneCache(path)
        cache.put(TuneCache.key("sum", (2, 4), ScheduleConfig()), 10)
        cache.save()
        # Simulate a SIGKILLed writer: leftover lock file + pid-tagged
        # temp from a process that no longer exists.
        lock = tmp_path / "cache.json.lock"
        lock.write_text("")
        stale = tmp_path / f"cache.json.{_dead_pid()}.tmp"
        stale.write_text('{"half": ')
        fresh = TuneCache(path)  # must not block or raise
        hit, cycles, fault = fresh.lookup(
            TuneCache.key("sum", (2, 4), ScheduleConfig())
        )
        assert hit and cycles == 10 and fault is None
        assert not stale.exists()  # swept on load
        fresh.put(TuneCache.key("sum", (2, 5), ScheduleConfig()), 11)
        fresh.save()  # must not block on the leftover lock file
        assert json.loads(path.read_text())["schema"] == 2

    def test_live_writer_tmp_left_alone(self, tmp_path):
        path = tmp_path / "cache.json"
        mine = tmp_path / f"cache.json.{os.getpid()}.tmp"
        mine.write_text("in progress")
        TuneCache(path)
        assert mine.exists()


# -- tuner store integration ----------------------------------------------------


class TestTunerStore:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = tune_kernel(
            "matmul",
            (2, 3, 4),
            strategy="random",
            budget=3,
            cache=TuneCache(None),
            store=store,
        )
        assert not first.from_store
        second = tune_kernel(
            "matmul",
            (2, 3, 4),
            strategy="random",
            budget=3,
            cache=TuneCache(None),
            store=store,
        )
        assert second.from_store
        assert second.candidates == []
        assert second.best.cycles == first.best.cycles
        assert second.best.config == first.best.config

    def test_different_budget_is_a_different_search(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        tune_kernel(
            "relu",
            (2, 4),
            strategy="random",
            budget=2,
            cache=TuneCache(None),
            store=store,
        )
        other = tune_kernel(
            "relu",
            (2, 4),
            strategy="random",
            budget=3,
            cache=TuneCache(None),
            store=store,
        )
        assert not other.from_store


# -- the CLI --------------------------------------------------------------------


class TestServiceCli:
    def test_submit_in_process(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        code = kernel_service.main(
            ["submit", "compile", "sum", "2", "4", "--store", store]
        )
        assert code == 0
        assert "computed" in capsys.readouterr().out
        code = kernel_service.main(
            ["submit", "compile", "sum", "2", "4", "--store", store]
        )
        assert code == 0
        assert "store" in capsys.readouterr().out

    def test_submit_asm_output(self, tmp_path, capsys):
        code = kernel_service.main(
            [
                "submit", "compile", "sum", "2", "4",
                "--store", str(tmp_path / "store"), "--asm",
            ]
        )
        assert code == 0
        assert ".globl sum" in capsys.readouterr().out

    def test_measure_with_schedule_knobs(self, tmp_path, capsys):
        code = kernel_service.main(
            [
                "submit", "measure", "matmul", "2", "3", "4",
                "--permutation", "1-0-2", "--unroll", "2",
                "--store", str(tmp_path / "store"),
            ]
        )
        assert code == 0
        assert "cycles" in capsys.readouterr().out

    def test_batch_file_and_exit_codes(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(
            json.dumps(
                [
                    {"kind": "compile", "kernel": "sum",
                     "sizes": [2, 4]},
                    {"kind": "measure", "kernel": "sum",
                     "sizes": [2, 4]},
                ]
            )
        )
        store = str(tmp_path / "store")
        assert kernel_service.main(
            ["batch", str(jobs), "--store", store]
        ) == 0
        out = capsys.readouterr().out
        assert "2 jobs" in out
        # A faulting job flips the exit code but not the batch.
        jobs.write_text(
            json.dumps(
                [{"kind": "compile", "kernel": "sum", "sizes": [2]}]
            )
        )
        assert kernel_service.main(
            ["batch", str(jobs), "--store", store]
        ) == 1
        assert "FAULT" in capsys.readouterr().out

    def test_stats_and_gc_json(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        kernel_service.main(
            ["submit", "compile", "sum", "2", "4", "--store", store]
        )
        capsys.readouterr()
        assert kernel_service.main(["stats", "--store", store]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["store"]["entries"] == 1
        assert kernel_service.main(["gc", "--store", store]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["after"]["entries"] == 1

    def test_socket_backend(self, live_server, capsys):
        _, socket_path = live_server
        code = kernel_service.main(
            [
                "submit", "compile", "relu", "2", "4",
                "--socket", str(socket_path),
            ]
        )
        assert code == 0
        assert "computed" in capsys.readouterr().out

    def test_backend_required(self, tmp_path):
        with pytest.raises(SystemExit):
            kernel_service.main(["submit", "compile", "sum", "2", "4"])

    def test_unreachable_socket_is_exit_4(self, tmp_path, capsys):
        code = kernel_service.main(
            [
                "submit", "compile", "sum", "2", "4",
                "--socket", str(tmp_path / "absent.sock"),
            ]
        )
        assert code == 4
        assert "service error" in capsys.readouterr().err


# -- pipeline spec canonicalization guard ---------------------------------------


class TestKeying:
    def test_request_key_matches_canonical_spec(self):
        request = ServiceRequest("compile", "matmul", (2, 3, 4))
        kind, key = request_key(request)
        assert kind == "kernel"
        module, _ = kernels.matmul(2, 3, 4)
        from repro.ir.printer import print_op

        text = print_op(module)
        spec = Compiler("ours").pipeline_spec
        assert key == compile_key(text, spec)

    def test_measure_keys_differ_by_config_and_seed(self):
        base = ServiceRequest("measure", "sum", (2, 4))
        by_config = ServiceRequest(
            "measure", "sum", (2, 4),
            config=ScheduleConfig(unroll_factor=2),
        )
        by_seed = ServiceRequest("measure", "sum", (2, 4), seed=1)
        keys = {request_key(r)[1] for r in (base, by_config, by_seed)}
        assert len(keys) == 3
