"""Tests for the public API (compile/run/metrics)."""

import numpy as np
import pytest

from repro import api, kernels
from repro.kernels import lowlevel
from repro.transforms.pipelines import build_pipeline


class TestCompileLinalg:
    def test_returns_compiled_kernel(self):
        module, _ = kernels.sum_kernel(4, 4)
        compiled = api.compile_linalg(module)
        assert compiled.entry == "sum"
        assert ".globl sum" in compiled.asm
        assert compiled.program.entry("sum") == 0

    def test_unknown_pipeline_rejected(self):
        module, _ = kernels.sum_kernel(4, 4)
        with pytest.raises(ValueError):
            api.compile_linalg(module, pipeline="llvm")

    def test_snapshots_off_by_default(self):
        module, _ = kernels.sum_kernel(4, 4)
        assert api.compile_linalg(module).snapshots == []

    def test_register_usage_reported(self):
        module, _ = kernels.sum_kernel(4, 4)
        fp, integer = api.compile_linalg(module).register_usage()
        assert fp >= 1 and integer >= 1

    def test_unroll_factor_forwarded(self):
        module, _ = kernels.matmul(1, 40, 8)
        compiled = api.compile_linalg(
            module, pipeline="ours", unroll_factor=2
        )
        assert compiled.asm.count("fmadd.d") == 2


class TestRunKernel:
    def test_scalar_and_array_arguments(self):
        module, spec = kernels.fill(3, 5)
        compiled = api.compile_linalg(module)
        result = api.run_kernel(compiled, [7.0, np.zeros((3, 5))])
        assert result.arrays[0] is None  # scalar slot
        np.testing.assert_array_equal(
            result.arrays[1], np.full((3, 5), 7.0)
        )

    def test_fresh_memory_per_run(self):
        module, spec = kernels.sum_kernel(4, 4)
        compiled = api.compile_linalg(module)
        a = api.run_kernel(compiled, spec.random_arguments(seed=1))
        b = api.run_kernel(compiled, spec.random_arguments(seed=2))
        assert not np.array_equal(a.arrays[2], b.arrays[2])

    def test_instruction_budget_enforced(self):
        module, spec = kernels.matmul(1, 200, 5)
        compiled = api.compile_linalg(module, pipeline="table3-baseline")
        from repro.snitch.machine import SimulationError

        with pytest.raises(SimulationError):
            api.run_kernel(
                compiled,
                spec.random_arguments(),
                max_instructions=100,
            )


class TestCompileLowlevel:
    def test_runs_backend_only(self):
        module, spec = lowlevel.lowlevel_sum_f32(2, 4)
        compiled = api.compile_lowlevel(module, spec.name)
        assert "frep.o" in compiled.asm
        assert "csrsi" in compiled.asm


class TestKernelSpec:
    def test_random_arguments_roles(self):
        _, spec = kernels.sum_kernel(4, 4)
        args = spec.random_arguments()
        assert (args[2] == 0).all()  # outputs zeroed
        assert args[0].shape == (4, 4)

    def test_min_cycles_fma(self):
        _, spec = kernels.matmul(2, 3, 4)
        assert spec.flops == 2 * 2 * 3 * 4
        assert spec.min_cycles == spec.flops // 2

    def test_min_cycles_non_fma(self):
        _, spec = kernels.relu(4, 4)
        assert spec.min_cycles == spec.flops

    def test_reference_shapes(self):
        _, spec = kernels.conv3x3(4, 6)
        args = spec.random_arguments()
        expected = spec.reference(*args)
        assert expected[2].shape == (4, 6)


class TestPipelineFactory:
    def test_all_named_pipelines_build(self):
        from repro.transforms.pipelines import PIPELINE_NAMES

        for name in PIPELINE_NAMES:
            manager = build_pipeline(name)
            assert manager.passes, name

    def test_ours_pass_order(self):
        spec = build_pipeline("ours").pipeline_spec
        order = spec.split(",")
        assert order.index("fuse-fill") < order.index(
            "scalar-replacement"
        )
        assert order.index("unroll-and-jam") < order.index(
            "lower-to-snitch"
        )
        assert order.index("allocate-registers") < order.index(
            "lower-riscv-scf"
        )
