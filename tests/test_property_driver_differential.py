"""Differential testing of the worklist driver vs the naive driver.

Random add/constant DAGs are rewritten with random subsets of a small,
confluent pattern set by both :func:`apply_patterns` (the worklist
greedy driver) and :func:`apply_patterns_naive` (the retained fixpoint
re-walk oracle); the resulting IR must be structurally identical.  The
end-to-end complement — every named pipeline emitting byte-identical
assembly through both eras of the rewriting substrate — lives in the
compiler-API golden tests.
"""

from hypothesis import given, settings, strategies as st

from repro.dialects import arith, builtin
from repro.ir import Operation, TypedPattern, print_op
from repro.ir.rewriter import apply_patterns, apply_patterns_naive


class _FoldAddZero(TypedPattern):
    """``x + 0`` (or ``0 + x``) -> ``x``."""

    op_type = arith.AddiOp

    def rewrite(self, op, rewriter):
        for value, other in ((op.rhs, op.lhs), (op.lhs, op.rhs)):
            owner = value.owner
            if (
                isinstance(owner, arith.ConstantOp)
                and owner.value.value == 0
            ):
                rewriter.replace_matched_op([], new_results=[other])
                return


class _ConstantFold(TypedPattern):
    """``c1 + c2`` -> constant of the sum."""

    op_type = arith.AddiOp

    def rewrite(self, op, rewriter):
        lhs, rhs = op.lhs.owner, op.rhs.owner
        if isinstance(lhs, arith.ConstantOp) and isinstance(
            rhs, arith.ConstantOp
        ):
            folded = arith.ConstantOp.from_int(
                lhs.value.value + rhs.value.value
            )
            rewriter.replace_matched_op(folded)


class _EraseDeadAdd(TypedPattern):
    """Drop adds whose result is never used."""

    op_type = arith.AddiOp

    def rewrite(self, op, rewriter):
        if not op.result.has_uses:
            rewriter.erase_matched_op()


_PATTERN_CLASSES = (_FoldAddZero, _ConstantFold, _EraseDeadAdd)


def _build_module(constants, pair_indices):
    """A module of constants, a random add DAG over them, and a sink.

    ``pair_indices`` picks, for each new add, two earlier values (by
    index into the growing value list).  The final value is anchored by
    an opaque sink op so the whole DAG is not trivially dead.
    """
    ops = [arith.ConstantOp.from_int(value) for value in constants]
    values = [op.result for op in ops]
    for left, right in pair_indices:
        add = arith.AddiOp(
            values[left % len(values)], values[right % len(values)]
        )
        ops.append(add)
        values.append(add.result)
    ops.append(Operation(operands=[values[-1]]))
    return builtin.ModuleOp(ops)


@settings(max_examples=60, deadline=None)
@given(
    constants=st.lists(
        st.integers(min_value=0, max_value=3), min_size=1, max_size=4
    ),
    pairs=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=15),
        ),
        min_size=0,
        max_size=8,
    ),
    pattern_mask=st.integers(min_value=1, max_value=7),
)
def test_worklist_matches_naive_driver(constants, pairs, pattern_mask):
    patterns = [
        cls
        for bit, cls in enumerate(_PATTERN_CLASSES)
        if pattern_mask & (1 << bit)
    ]

    worklist_module = _build_module(constants, pairs)
    worklist_changed = apply_patterns(
        worklist_module, [cls() for cls in patterns]
    )

    naive_module = _build_module(constants, pairs)
    naive_changed = apply_patterns_naive(
        naive_module, [cls() for cls in patterns]
    )

    assert worklist_changed == naive_changed
    assert print_op(worklist_module) == print_op(naive_module)
