"""Tests for the IRDL-style declarative definition layer."""

import pytest

from repro.dialects import riscv
from repro.dialects.riscv import FloatRegisterType, IntRegisterType
from repro.ir import op_registry
from repro.ir.attributes import (
    DenseIntAttr,
    IntAttr,
    StringAttr,
    f64,
    index,
)
from repro.ir.core import Block, IRError, Operation
from repro.ir.irdl import (
    AnyAttr,
    AnyOf,
    BaseAttr,
    Dialect,
    EqAttr,
    ParamAttr,
    SameAs,
    attr_def,
    coerce_constraint,
    irdl_op_definition,
    operand_def,
    opt_attr_def,
    result_def,
    var_operand_def,
)
from repro.ir.parser import ParseError, parse_op
from repro.ir.traits import SameOperandsAndResultType


def value(vtype=f64):
    """A fresh SSA value of the given type (a block argument)."""
    return Block([vtype]).args[0]


class TestConstraints:
    def test_any(self):
        assert AnyAttr().satisfied_by(f64)
        assert AnyAttr().satisfied_by(index)

    def test_base(self):
        c = BaseAttr(IntRegisterType)
        assert c.satisfied_by(IntRegisterType("t0"))
        assert not c.satisfied_by(FloatRegisterType("ft0"))

    def test_eq(self):
        c = EqAttr(f64)
        assert c.satisfied_by(f64)
        assert not c.satisfied_by(index)

    def test_any_of(self):
        c = AnyOf(IntRegisterType, FloatRegisterType)
        assert c.satisfied_by(IntRegisterType())
        assert c.satisfied_by(FloatRegisterType("ft0"))
        assert not c.satisfied_by(f64)

    def test_param_attr(self):
        from repro.dialects.stream import ReadableStreamType

        c = ParamAttr(ReadableStreamType, element_type=FloatRegisterType)
        assert c.satisfied_by(ReadableStreamType(FloatRegisterType()))
        assert not c.satisfied_by(ReadableStreamType(f64))
        assert not c.satisfied_by(f64)

    def test_coerce(self):
        assert isinstance(coerce_constraint(None), AnyAttr)
        assert isinstance(coerce_constraint(IntRegisterType), BaseAttr)
        assert isinstance(coerce_constraint(f64), EqAttr)
        with pytest.raises(TypeError):
            coerce_constraint(42)

    def test_describe(self):
        assert "IntRegisterType" in AnyOf(
            IntRegisterType, FloatRegisterType
        ).describe()


@irdl_op_definition
class _PairOp(Operation):
    """A test op: two constrained operands, one derived result."""

    name = "testdl.pair"
    __slots__ = ()

    lhs = operand_def(BaseAttr(IntRegisterType))
    rhs = operand_def(BaseAttr(IntRegisterType))
    count = attr_def(IntAttr)
    tag = opt_attr_def(StringAttr)
    result = result_def(BaseAttr(IntRegisterType), default=SameAs("lhs"))


@irdl_op_definition
class _VariadicOp(Operation):
    """A test op: fixed head operand plus a variadic tail."""

    name = "testdl.variadic"
    __slots__ = ()

    anchor = operand_def(BaseAttr(IntRegisterType))
    rest = var_operand_def(BaseAttr(FloatRegisterType))


@irdl_op_definition
class _SegmentedOp(Operation):
    """A test op with two variadic operand groups (segment-encoded)."""

    name = "testdl.segmented"
    __slots__ = ()

    inputs = var_operand_def()
    outputs = var_operand_def()


@irdl_op_definition
class _SameTypeOp(Operation):
    """A test op with the SameOperandsAndResultType trait."""

    name = "testdl.same"
    traits = frozenset([SameOperandsAndResultType])
    __slots__ = ()

    lhs = operand_def()
    rhs = operand_def()
    result = result_def(default=SameAs("lhs"))


class TestSynthesizedInit:
    def test_positional_and_accessors(self):
        a, b = value(IntRegisterType("t0")), value(IntRegisterType("t1"))
        op = _PairOp(a, b, 3)
        assert op.lhs is a and op.rhs is b
        assert op.count == 3
        assert op.tag is None
        assert op.result.type == IntRegisterType("t0")

    def test_result_type_alias(self):
        a, b = value(IntRegisterType()), value(IntRegisterType())
        op = _PairOp(a, b, 1, result_type=IntRegisterType("t5"))
        assert op.result.type == IntRegisterType("t5")

    def test_missing_operand_rejected(self):
        with pytest.raises(TypeError, match="missing required operand"):
            _PairOp(value(IntRegisterType()))

    def test_missing_attr_rejected(self):
        a, b = value(IntRegisterType()), value(IntRegisterType())
        with pytest.raises(TypeError, match="missing required attribute"):
            _PairOp(a, b)

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="unexpected argument"):
            _PairOp(nonsense=1)

    def test_operand_constraint_enforced(self):
        a, bad = value(IntRegisterType()), value(f64)
        with pytest.raises(IRError, match="lhs"):
            _PairOp(bad, a, 1)

    def test_optional_attr_stored(self):
        a, b = value(IntRegisterType()), value(IntRegisterType())
        op = _PairOp(a, b, 1, tag="hello")
        assert op.tag == "hello"
        assert op.attributes["tag"] == StringAttr("hello")

    def test_variadic_group(self):
        head = value(IntRegisterType())
        tail = [value(FloatRegisterType()) for _ in range(3)]
        op = _VariadicOp(head, tail)
        assert op.anchor is head
        assert list(op.rest) == tail
        op.verify_()

    def test_segment_sizes_attr(self):
        xs = [value(f64), value(f64)]
        ys = [value(index)]
        op = _SegmentedOp(xs, ys)
        assert op.attributes["operand_segment_sizes"] == DenseIntAttr(
            [2, 1]
        )
        assert list(op.inputs) == xs
        assert list(op.outputs) == ys
        op.verify_()


class TestGeneratedVerify:
    def test_arity_enforced(self):
        op = object.__new__(_PairOp)
        Operation.__init__(
            op,
            operands=[value(IntRegisterType())],
            result_types=[IntRegisterType()],
            attributes={"count": IntAttr(1)},
        )
        with pytest.raises(IRError, match="expected 2 operand"):
            op.verify_()

    def test_operand_type_enforced(self):
        op = object.__new__(_PairOp)
        Operation.__init__(
            op,
            operands=[value(f64), value(IntRegisterType())],
            result_types=[IntRegisterType()],
            attributes={"count": IntAttr(1)},
        )
        with pytest.raises(IRError, match="lhs"):
            op.verify_()

    def test_missing_attr_enforced(self):
        op = object.__new__(_PairOp)
        Operation.__init__(
            op,
            operands=[value(IntRegisterType())] * 2,
            result_types=[IntRegisterType()],
        )
        with pytest.raises(IRError, match="missing attribute 'count'"):
            op.verify_()

    def test_bad_segment_attr_enforced(self):
        op = object.__new__(_SegmentedOp)
        Operation.__init__(
            op,
            operands=[value(f64)],
            attributes={"operand_segment_sizes": DenseIntAttr([3, 1])},
        )
        with pytest.raises(IRError, match="operand_segment_sizes"):
            op.verify_()

    def test_same_type_trait_enforced(self):
        op = _SameTypeOp(value(f64), value(f64))
        op.verify_()
        bad = object.__new__(_SameTypeOp)
        Operation.__init__(
            bad,
            operands=[value(f64), value(index)],
            result_types=[f64],
        )
        with pytest.raises(IRError, match="types differ"):
            bad.verify_()

    def test_variadic_element_type_enforced(self):
        op = _VariadicOp(
            value(IntRegisterType()), [value(FloatRegisterType())]
        )
        op.verify_()
        bad = object.__new__(_VariadicOp)
        Operation.__init__(
            bad,
            operands=[value(IntRegisterType()), value(index)],
        )
        with pytest.raises(IRError, match="rest"):
            bad.verify_()

    def test_no_handwritten_declarative_verify(self):
        """No dialect op may hand-roll what its spec already checks.

        Every registered op either inherits the generated ``verify_``
        (its class dict chain holds the compiled closure) or confines
        bespoke logic to ``verify_extra_``.
        """
        for name in op_registry.registered_names():
            op_class = op_registry.lookup(name)
            assert hasattr(op_class, "irdl_spec"), name
            verify = op_class.verify_
            assert getattr(verify, "__qualname__", "").endswith(
                "verify_"
            ), name


class TestInheritedDefinitions:
    def test_leaf_errors_name_the_leaf(self):
        """Errors from an inherited constructor name the concrete op."""
        bad = value(FloatRegisterType("ft0"))
        with pytest.raises(IRError, match="rv.add"):
            riscv.AddOp(bad, bad)
        with pytest.raises(TypeError, match="AddOp"):
            riscv.AddOp()

    def test_subclass_verify_extra_is_called(self):
        """A verify_extra_ added *below* the decorated class still runs."""

        class PickyOp(riscv.RdRsRsInstruction):
            name = "rv.picky_test"
            __slots__ = ()

            def verify_extra_(self):
                raise IRError("picky")

        a = value(IntRegisterType("t0"))
        with pytest.raises(IRError, match="picky"):
            PickyOp(a, a).verify_()

    def test_zero_result_spec_enforced(self):
        """An op declaring no results must not carry any."""
        from repro.dialects import riscv_func

        bad = object.__new__(riscv_func.ReturnOp)
        Operation.__init__(bad, result_types=[IntRegisterType()])
        with pytest.raises(IRError, match="expected 0 result"):
            bad.verify_()

    def test_variadic_results_accepted(self):
        """Loop ops declare a variadic result group: any count passes."""
        from repro.dialects import riscv_scf

        regs = [value(IntRegisterType()) for _ in range(3)]
        iters = [value(FloatRegisterType())]
        loop = riscv_scf.ForOp(*regs, iters)
        loop.body_block.add_op(
            riscv_scf.YieldOp(loop.body_iter_args)
        )
        loop.verify_()
        assert loop.loop_results == tuple(loop.results)

    def test_variadic_results_need_custom_init(self):
        with pytest.raises(TypeError, match="variadic result"):

            @irdl_op_definition
            class _BadOp(Operation):
                name = "testdl.badvar"
                __slots__ = ()

                outs = __import__(
                    "repro.ir.irdl", fromlist=["var_result_def"]
                ).var_result_def()


class TestSuccessors:
    def test_successor_reads_as_label(self):
        from repro.dialects import riscv_cf

        branch = riscv_cf.BltOp(
            value(IntRegisterType("t0")),
            value(IntRegisterType("t1")),
            ".loop",
        )
        assert branch.target == ".loop"
        assert branch.attributes["target"] == StringAttr(".loop")
        spec = riscv_cf.BltOp.irdl_spec
        succ = [n for n, d in spec.attrs if d.is_successor]
        assert succ == ["target"]


class TestDialect:
    def test_namespace_enforced(self):
        with pytest.raises(ValueError, match="does not belong"):
            Dialect("other", ops=[_PairOp])

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="duplicate op"):
            Dialect("testdl", ops=[_PairOp, _PairOp])

    def test_op_names_sorted(self):
        d = Dialect("testdl", ops=[_VariadicOp, _PairOp])
        assert d.op_names() == ["testdl.pair", "testdl.variadic"]

    def test_registry_is_dialect_driven(self):
        for dialect in op_registry.dialects():
            for op_class in dialect.ops:
                assert op_registry.lookup(op_class.name) is op_class

    def test_register_dialect_idempotent(self):
        op_registry.populate()
        before = op_registry.registered_names()
        op_registry.populate()
        assert op_registry.registered_names() == before

    def test_duplicate_dialect_rejected(self):
        op_registry.populate()
        with pytest.raises(ValueError, match="duplicate dialect"):
            op_registry.register_dialect(Dialect("rv"))

    def test_instruction_table_is_registered(self):
        """The rv.* leaf table materialized real, registered classes."""
        assert op_registry.lookup("rv.fmadd.d") is riscv.FMAddDOp
        assert riscv.FMAddDOp.mnemonic == "fmadd.d"
        assert riscv.FMAddDOp.irdl_spec.operands[0][0] == "rs1"


class TestParserDiagnostics:
    def test_unknown_op_in_registered_dialect(self):
        with pytest.raises(ParseError) as err:
            parse_op('"arith.bogus"() : () -> ()')
        message = str(err.value)
        assert "arith.bogus" in message
        assert "line 1" in message

    def test_unknown_dialect_still_generic(self):
        op = parse_op('"mystery.op"() : () -> ()')
        assert op.name == "mystery.op"

    def test_operand_arity_checked_against_spec(self):
        with pytest.raises(ParseError) as err:
            parse_op(
                '"builtin.module"() ({\n^0():\n'
                '%0 = "rv.get_register"() : () -> (!rv.reg)\n'
                '%1 = "rv.add"(%0) : (!rv.reg) -> (!rv.reg)\n'
                "}) : () -> ()"
            )
        message = str(err.value)
        assert "rv.add" in message
        assert "expected 2 operand(s)" in message
        assert "line 4" in message

    def test_result_arity_checked_against_spec(self):
        with pytest.raises(ParseError) as err:
            parse_op('"rv.li"() {immediate = 4} : () -> ()')
        assert "expected 1 result(s)" in str(err.value)

    def test_type_mismatch_names_op(self):
        with pytest.raises(ParseError) as err:
            parse_op(
                '"builtin.module"() ({\n^0():\n'
                '%0 = "rv.get_register"() : () -> (!rv.reg)\n'
                '"rv_cf.bnez"(%0) {target = "x"} : (!rv.freg) -> ()\n'
                "}) : () -> ()"
            )
        assert "rv_cf.bnez" in str(err.value)

    def test_parse_error_is_ir_error(self):
        assert issubclass(ParseError, IRError)
