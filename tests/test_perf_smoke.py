"""Compile-time perf smoke tests (``pytest -m perf_smoke``).

Wall-clock assertions are flaky on shared machines, so these check the
machine-independent efficiency metric instead: the rewrite driver's
counters, recorded per pass by the :class:`PassManager` instrumentation.
The budgets have generous headroom over the worklist driver's actual
numbers but sit far below the fixpoint re-walk driver's (which visited
~220 ops compiling the same kernel), so any regression toward
whole-module rescans trips them immediately.
"""

import numpy as np
import pytest

from repro import api, kernels
from repro.compiler import Compiler
from repro.snitch.cluster import run_row_partitioned
from repro.snitch.engine import DECODE_STATS

#: Counter ceilings for matmul(1, 8, 8); the worklist driver uses
#: ~14/14/10 and the old fixpoint driver used ~220 invocations.
BUDGETS = {
    "ours": {"ops_visited": 60, "pattern_invocations": 60},
    "mlir": {"ops_visited": 40, "pattern_invocations": 40},
}


def _counter_totals(pipeline):
    module, _ = kernels.matmul(1, 8, 8)
    compiled = Compiler(pipeline).compile(module)
    totals = {"ops_visited": 0, "pattern_invocations": 0}
    for _, stats in compiled.pass_stats:
        for key in totals:
            totals[key] += stats[key]
    return totals


@pytest.mark.perf_smoke
@pytest.mark.parametrize("pipeline", sorted(BUDGETS))
def test_driver_counters_within_budget(pipeline):
    totals = _counter_totals(pipeline)
    for key, budget in BUDGETS[pipeline].items():
        assert totals[key] <= budget, (
            f"{pipeline}: {key} = {totals[key]} exceeds the perf-smoke "
            f"budget of {budget}; the pattern driver regressed toward "
            "whole-module rescans"
        )


@pytest.mark.perf_smoke
def test_simulator_decodes_once_per_program():
    """The predecoded engine's decode must run once per program — not
    once per run: repeated runs of one compiled kernel share a decode."""
    module, spec = kernels.matmul(1, 8, 8)
    compiled = Compiler("ours").compile(module)
    arguments = spec.random_arguments(seed=0)
    before = DECODE_STATS["programs_decoded"]
    for _ in range(3):
        api.run_kernel(compiled, arguments)
    assert DECODE_STATS["programs_decoded"] == before + 1


@pytest.mark.perf_smoke
def test_simulator_decodes_once_per_cluster():
    """...and not once per core: equal-shape cluster cores share both
    the compiled kernel and its decoded program."""
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, (8, 6))
    y = rng.uniform(-1, 1, (8, 6))
    z = np.zeros((8, 6))
    before = DECODE_STATS["programs_decoded"]
    run_row_partitioned(
        kernels.sum_kernel,
        lambda module, spec: api.compile_linalg(module, pipeline="ours"),
        (8, 6),
        4,
        [x, y, z],
        row_parallel_args=[0, 1, 2],
    )
    assert DECODE_STATS["programs_decoded"] == before + 1


@pytest.mark.perf_smoke
def test_pass_stats_recorded_for_every_pass():
    module, _ = kernels.matmul(1, 8, 8)
    compiled = Compiler("ours").compile(module)
    assert [n for n, _ in compiled.pass_stats] == [
        n for n, _ in compiled.pass_timings
    ]
    assert all(
        set(stats)
        == {"ops_visited", "pattern_invocations", "rewrites_applied"}
        for _, stats in compiled.pass_stats
    )
