"""Tests for the textual IR parser, including full round-trips."""

import pytest

from repro import kernels
from repro.dialects import arith, builtin, func, linalg, memref_stream
from repro.dialects.riscv import FloatRegisterType, IntRegisterType
from repro.dialects.snitch_stream import StridePattern
from repro.ir import (
    AffineMap,
    DenseIntAttr,
    FloatAttr,
    IntAttr,
    MemRefType,
    ParseError,
    Parser,
    StringAttr,
    f32,
    f64,
    index,
    parse_module,
    parse_op,
    print_op,
    verify,
)
from repro.ir.attributes import FunctionType
from repro.transforms.convert_linalg_to_memref_stream import (
    ConvertLinalgToMemrefStreamPass,
)


def roundtrip(module):
    """print -> parse -> print must be a fixpoint."""
    text = print_op(module)
    parsed = parse_op(text)
    verify(parsed)
    assert print_op(parsed) == text
    return parsed


class TestTypes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("f64", f64),
            ("f32", f32),
            ("i32", __import__("repro.ir", fromlist=["i32"]).i32),
            ("index", index),
            ("memref<5x200xf64>", MemRefType(f64, (5, 200))),
            ("memref<f64>", MemRefType(f64, ())),
            ("!rv.reg<t0>", IntRegisterType("t0")),
            ("!rv.reg", IntRegisterType()),
            ("!rv.freg<ft3>", FloatRegisterType("ft3")),
        ],
    )
    def test_type_parsing(self, text, expected):
        assert Parser(text).parse_type() == expected

    def test_stream_types(self):
        parsed = Parser("!stream.readable<!rv.freg<ft0>>").parse_type()
        assert parsed.element_type == FloatRegisterType("ft0")

    def test_bad_type(self):
        with pytest.raises(ParseError):
            Parser("complex<f64>").parse_type()


class TestAttributes:
    def parse(self, text):
        return Parser(text).parse_attribute()

    def test_int(self):
        assert self.parse("42") == IntAttr(42)
        assert self.parse("-7") == IntAttr(-7)

    def test_float_with_type(self):
        assert self.parse("1.5 : f64") == FloatAttr(1.5, f64)
        assert self.parse("-100000000.0 : f64") == FloatAttr(-1e8, f64)

    def test_string(self):
        assert self.parse('"matmul"') == StringAttr("matmul")

    def test_dense_ints(self):
        assert self.parse("[1, 200, 5]") == DenseIntAttr([1, 200, 5])

    def test_array_of_strings(self):
        from repro.ir import ArrayAttr

        assert self.parse('["parallel", "reduction"]') == ArrayAttr(
            [StringAttr("parallel"), StringAttr("reduction")]
        )

    def test_function_type_attr(self):
        assert self.parse("(f64) -> ()") == FunctionType([f64], [])

    def test_affine_map(self):
        parsed = self.parse("affine_map<(d0, d1) -> (((d0 * 5) + d1))>")
        assert isinstance(parsed, AffineMap)
        assert parsed.evaluate((2, 3)) == (13,)

    def test_snitch_stride_pattern(self):
        parsed = self.parse(
            "#snitch_stream.stride_pattern<ub = [5, 200], "
            "strides = [0, 8]>"
        )
        assert parsed == StridePattern([5, 200], [0, 8])

    def test_attr_roundtrip_via_str(self):
        for attr in (
            IntAttr(3),
            FloatAttr(2.5, f64),
            DenseIntAttr([1, 2]),
            StridePattern([4], [8]),
            AffineMap.from_callable(2, lambda i, j: (i + j,)),
        ):
            assert self.parse(str(attr)) == attr


class TestOperations:
    def test_simple_op(self):
        op = parse_op('"arith.constant"() {value = 3} : () -> (index)')
        assert isinstance(op, arith.ConstantOp)
        assert op.value == IntAttr(3)

    def test_unknown_op_kept_generic(self):
        op = parse_op('"mystery.op"() : () -> ()')
        assert op.name == "mystery.op"

    def test_undefined_value_rejected(self):
        with pytest.raises(ParseError):
            parse_op('"arith.addf"(%0, %1) : (f64, f64) -> (f64)')

    def test_operand_type_mismatch_rejected(self):
        text = """
        "builtin.module"() ({
          ^0():
            %0 = "arith.constant"() {value = 1} : () -> (index)
            %1 = "arith.addf"(%0, %0) : (f64, f64) -> (f64)
        }) : () -> ()
        """
        with pytest.raises(ParseError):
            parse_op(text)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_op('"mystery.op"() : () -> () extra')

    def test_parse_module_type_checked(self):
        with pytest.raises(ParseError):
            parse_module('"mystery.op"() : () -> ()')


class TestRoundTrips:
    def test_constant_module(self):
        module = builtin.ModuleOp(
            [arith.ConstantOp.from_float(1.5, f64)]
        )
        roundtrip(module)

    def test_linalg_kernels_roundtrip(self):
        for build in (
            lambda: kernels.matmul(2, 3, 4),
            lambda: kernels.conv3x3(2, 4),
            lambda: kernels.relu(3, 3),
            lambda: kernels.fill(2, 2),
        ):
            module, _ = build()
            parsed = roundtrip(module)
            # parsed ops carry the real classes
            assert any(
                isinstance(op, (linalg.GenericOp, linalg.FillOp))
                for op in parsed.walk()
            )

    def test_memref_stream_level_roundtrip(self):
        module, _ = kernels.matmul(1, 8, 4)
        ConvertLinalgToMemrefStreamPass().run(module)
        parsed = roundtrip(module)
        generic = next(
            op
            for op in parsed.walk()
            if isinstance(op, memref_stream.GenericOp)
            and op.reduction_dims
        )
        assert generic.bounds == (1, 4, 8)

    def test_riscv_level_roundtrip(self):
        from repro.transforms.pipelines import build_pipeline

        module, _ = kernels.matvec(5, 20)
        # stop before loop flattening to keep structured ops in the IR
        manager = build_pipeline("ours")
        manager.passes = manager.passes[:-1]
        manager.run(module)
        parsed = roundtrip(module)
        names = {op.name for op in parsed.walk()}
        assert "rv_snitch.frep_outer" in names
        assert "rv.fmadd.d" in names

    def test_parsed_module_compiles(self):
        """Parsed linalg IR goes through the whole compiler."""
        import numpy as np
        from repro import api

        module, spec = kernels.matmul(1, 16, 4)
        parsed = parse_module(print_op(module))
        compiled = api.compile_linalg(parsed, pipeline="ours")
        args = spec.random_arguments(seed=5)
        result = api.run_kernel(compiled, args)
        np.testing.assert_allclose(
            result.arrays[2], spec.reference(*args)[2], atol=1e-9
        )
