"""Unit tests for the predecoded closure engine (repro.snitch.engine).

The hypothesis-driven randomized differential suite lives in
``test_property_sim_differential.py``; this file pins down fixed
behaviours: bit-exactness on handwritten programs covering every
instruction class, decode caching (once per program, shared across
machines and cluster cores), and the error paths both engines must
agree on.
"""

import numpy as np
import pytest

from repro import api, kernels
from repro.backend.registers import FLOAT_REGISTERS, INT_REGISTERS
from repro.snitch import SnitchMachine, SimulationError, TCDM, assemble
from repro.snitch.cluster import run_row_partitioned
from repro.snitch.engine import DECODE_STATS, decode
from repro.snitch.isa import scfg_address
from repro.snitch.machine import bits_to_f64


def assert_same_outcome(
    asm,
    int_args=None,
    float_args=None,
    seed_memory=None,
    max_instructions=50_000_000,
):
    """Run ``asm`` on both engines; assert every observable is equal.

    ``seed_memory`` is a bytes prefix loaded into both TCDMs.  Returns
    the fast machine (for additional assertions).
    """
    program = assemble(asm)
    machines = []
    for reference in (False, True):
        memory = TCDM()
        if seed_memory:
            memory.data[: len(seed_memory)] = seed_memory
        machine = SnitchMachine(
            program,
            memory,
            max_instructions=max_instructions,
            record_timeline=True,
        )
        runner = machine.run_reference if reference else machine.run
        error = None
        try:
            runner("main", int_args=int_args, float_args=float_args)
        except Exception as exc:  # compared against the other engine
            error = exc
        machines.append((machine, error))
    (fast, fast_error), (ref, ref_error) = machines
    if ref_error is None:
        assert fast_error is None, fast_error
    else:
        assert type(fast_error) is type(ref_error)
        assert str(fast_error) == str(ref_error)
    assert fast.trace == ref.trace
    assert fast.timeline == ref.timeline
    assert bytes(fast.memory.data) == bytes(ref.memory.data)
    for name in INT_REGISTERS + FLOAT_REGISTERS:
        assert fast.read_int(name) == ref.read_int(name), name
        assert fast.read_float_bits(name) == ref.read_float_bits(name), name
    assert fast.int_time == ref.int_time
    assert fast.fpu_time == ref.fpu_time
    assert fast._executed == ref._executed
    assert fast.streaming == ref.streaming
    for fast_mover, ref_mover in zip(fast.movers, ref.movers):
        assert fast_mover == ref_mover
    return fast


def ssr_dot_product_asm(n, a_base, b_base):
    """FREP+SSR dot product: fa0 += a[i] * b[i] over streams ft0/ft1."""
    lines = ["main:"]
    for mover, base in ((0, a_base), (1, b_base)):
        lines += [
            f"li t0, {n - 1}",
            f"scfgwi t0, {scfg_address(mover, 0)}",
            "li t0, 8",
            f"scfgwi t0, {scfg_address(mover, 8)}",
            f"li t0, {base}",
            f"scfgwi t0, {scfg_address(mover, 24)}",
        ]
    lines += [
        "csrsi ssrcfg, 1",
        f"li t1, {n - 1}",
        "frep.o t1, 1, 0, 0",
        "fmadd.d fa0, ft0, ft1, fa0",
        "csrci ssrcfg, 1",
        "ret",
    ]
    return "\n".join(lines)


class TestBitExactness:
    def test_scalar_loop(self):
        assert_same_outcome(
            """
            main:
                li t0, 25
                li t1, 0
                li t2, 0
            loop:
                add t1, t1, t0
                mul t3, t1, t0
                slli t4, t0, 1
                sub t3, t3, t4
                addi t0, t0, -1
                bnez t0, loop
                add t5, t1, t3
                ret
            """
        )

    def test_memory_and_branches(self):
        assert_same_outcome(
            """
            main:
                li t0, 64
                li t1, 7
                sw t1, 0(t0)
                lw t2, 0(t0)
                add t3, t2, t2
                sw t3, 4(t0)
                lw t4, 4(t0)
                beq t2, t1, ok
                li t6, 111
            ok:
                blt t4, t2, bad
                j done
            bad:
                li t6, 222
            done:
                ret
            """
        )

    def test_fp_pipeline_and_raw_stalls(self):
        assert_same_outcome(
            """
            main:
                fadd.d fa0, fa1, fa2
                fadd.d fa0, fa0, fa2
                fmul.d fa3, fa0, fa1
                fmadd.d fa4, fa3, fa1, fa0
                fmax.d fa5, fa4, fa1
                fmin.d fa6, fa4, fa1
                fsub.d fa7, fa5, fa6
                fmv.d ft3, fa7
                fcvt.d.w ft4, zero
                ret
            """,
            float_args={"fa1": 1.5, "fa2": -2.25},
        )

    def test_fp_loads_stores(self):
        memory = TCDM()
        base = memory.allocate(32)
        memory.store_f64(base, 3.5)
        memory.store_f64(base + 8, -1.25)
        assert_same_outcome(
            f"""
            main:
                li a0, {base}
                fld fa0, 0(a0)
                fld fa1, 8(a0)
                fadd.d fa2, fa0, fa1
                fsd fa2, 16(a0)
                flw ft3, 0(a0)
                fsw ft3, 24(a0)
                lw t0, 16(a0)
                ret
            """,
            seed_memory=bytes(memory.data[:256]),
        )

    def test_frep_replay(self):
        assert_same_outcome(
            """
            main:
                li t0, 9
                frep.o t0, 2, 0, 0
                fadd.d fa0, fa2, fa3
                fmadd.d fa1, fa0, fa2, fa1
                ret
            """,
            float_args={"fa2": 1.0, "fa3": 2.0},
        )

    def test_ssr_frep_dot_product(self):
        n = 16
        memory = TCDM()
        a_base = memory.allocate(n * 8)
        b_base = memory.allocate(n * 8)
        rng = np.random.default_rng(3)
        a = rng.uniform(-2, 2, n)
        b = rng.uniform(-2, 2, n)
        memory.write_array(a_base, a)
        memory.write_array(b_base, b)
        fast = assert_same_outcome(
            ssr_dot_product_asm(n, a_base, b_base),
            seed_memory=bytes(memory.data[: b_base + n * 8]),
        )
        got = bits_to_f64(fast.read_float_bits("fa0"))
        assert got == pytest.approx(float(a @ b))
        assert fast.trace.ssr_reads == 2 * n

    def test_ssr_write_stream_and_repetition(self):
        """ft2 as a write stream; ft0 read with element repetition.

        ``fadd.d ft2, ft0, ft0`` pops the read stream twice per
        instruction, and repeat=1 serves every element twice — so each
        instruction sees one element on both operands and the stream
        sustains ``n`` doublings from ``n`` source elements.
        """
        n = 6
        memory = TCDM()
        src = memory.allocate(n * 8)
        dst = memory.allocate(n * 8)
        memory.write_array(src, np.arange(1.0, n + 1.0))
        asm = f"""
        main:
            li t0, {n - 1}
            scfgwi t0, {scfg_address(0, 0)}
            li t0, 8
            scfgwi t0, {scfg_address(0, 8)}
            li t0, 1
            scfgwi t0, {scfg_address(0, 16)}
            li t0, {src}
            scfgwi t0, {scfg_address(0, 24)}
            li t0, {n - 1}
            scfgwi t0, {scfg_address(2, 0)}
            li t0, 8
            scfgwi t0, {scfg_address(2, 8)}
            li t0, {dst}
            scfgwi t0, {scfg_address(2, 28)}
            csrsi ssrcfg, 1
            li t1, {n - 1}
            frep.o t1, 1, 0, 0
            fadd.d ft2, ft0, ft0
            csrci ssrcfg, 1
            ret
        """
        fast = assert_same_outcome(
            asm, seed_memory=bytes(memory.data[: dst + n * 8])
        )
        out = fast.memory.read_array(dst, (n,), np.float64)
        np.testing.assert_array_equal(out, np.arange(1.0, n + 1.0) * 2)
        assert fast.trace.ssr_reads == 2 * n
        assert fast.trace.ssr_writes == n

    def test_multidim_stream_with_stride_rewrite_mid_pattern(self):
        """A 2-d read stream whose innermost stride is reconfigured
        between two streaming phases — exercises the incremental
        address generator's resync path."""
        memory = TCDM()
        base = memory.allocate(16 * 8)
        memory.write_array(base, np.arange(16, dtype=np.float64))
        asm = f"""
        main:
            li t0, 3
            scfgwi t0, {scfg_address(0, 0)}
            li t0, 1
            scfgwi t0, {scfg_address(0, 1)}
            li t0, 8
            scfgwi t0, {scfg_address(0, 8)}
            li t0, 32
            scfgwi t0, {scfg_address(0, 9)}
            li t0, {base}
            scfgwi t0, {scfg_address(0, 25)}
            csrsi ssrcfg, 1
            fadd.d fa0, ft0, ft0
            fadd.d fa1, ft0, ft0
            li t0, 16
            scfgwi t0, {scfg_address(0, 8)}
            fadd.d fa2, ft0, ft0
            fadd.d fa3, ft0, ft0
            csrci ssrcfg, 1
            ret
        """
        assert_same_outcome(
            asm, seed_memory=bytes(memory.data[: base + 16 * 8])
        )

    def test_packed_simd(self):
        assert_same_outcome(
            """
            main:
                vfcpka.s.s ft3, fa0, fa1
                vfcpka.s.s ft4, fa2, fa3
                vfadd.s ft5, ft3, ft4
                vfmul.s ft6, ft3, ft4
                vfmac.s ft6, ft3, ft4
                vfmax.s ft7, ft5, ft6
                vfsum.s ft8, ft7
                fadd.s fa4, fa0, fa1
                fmadd.s fa5, fa4, fa0, fa1
                ret
            """,
            float_args={
                "fa0": 1.5, "fa1": -2.0, "fa2": 0.25, "fa3": 3.0
            },
        )

    def test_csr_drain_synchronizes_timelines(self):
        fast = assert_same_outcome(
            """
            main:
                csrsi ssrcfg, 1
                fadd.d fa0, fa1, fa2
                fadd.d fa0, fa0, fa2
                csrci ssrcfg, 1
                li t0, 1
                ret
            """,
            float_args={"fa1": 1.0, "fa2": 2.0},
        )
        assert not fast.streaming


class TestErrorParity:
    def test_frep_budget_checked_inside_loop(self):
        """Satellite regression: a runaway ``frep.o`` trip count must
        raise promptly, not replay every iteration first."""
        asm = """
        main:
            li t0, 99999999
            frep.o t0, 1, 0, 0
            fadd.d fa0, fa1, fa2
            ret
        """
        program = assemble(asm)
        for runner_name in ("run", "run_reference"):
            machine = SnitchMachine(program, max_instructions=50)
            with pytest.raises(SimulationError, match="inside frep"):
                getattr(machine, runner_name)("main")
            assert machine._executed == 51

    def test_top_level_budget(self):
        asm = """
        main:
            li t0, 1
        loop:
            addi t0, t0, 1
            bnez t0, loop
            ret
        """
        assert_same_outcome(asm, max_instructions=40)

    def test_illegal_frep_body(self):
        assert_same_outcome(
            """
            main:
                li t0, 3
                frep.o t0, 1, 0, 0
                addi t1, t1, 1
                ret
            """
        )

    def test_frep_body_past_end(self):
        assert_same_outcome(
            """
            main:
                li t0, 3
                frep.o t0, 5, 0, 0
                fadd.d fa0, fa1, fa2
                ret
            """
        )

    def test_stream_read_past_end(self):
        memory = TCDM()
        base = memory.allocate(4 * 8)
        asm = f"""
        main:
            li t0, 1
            scfgwi t0, {scfg_address(0, 0)}
            li t0, 8
            scfgwi t0, {scfg_address(0, 8)}
            li t0, {base}
            scfgwi t0, {scfg_address(0, 24)}
            csrsi ssrcfg, 1
            fadd.d fa0, ft0, ft0
            fadd.d fa1, ft0, ft0
            fadd.d fa2, ft0, ft0
            ret
        """
        assert_same_outcome(
            asm, seed_memory=bytes(memory.data[: base + 4 * 8])
        )

    def test_unknown_scfg_word(self):
        assert_same_outcome(
            """
            main:
                li t0, 4
                scfgwi t0, 20
                ret
            """
        )

    def test_load_out_of_bounds(self):
        assert_same_outcome(
            """
            main:
                li t0, 131070
                lw t1, 0(t0)
                ret
            """
        )


class TestDecodeSharing:
    def test_decode_cached_on_program(self):
        program = assemble("main:\nli t0, 1\nret")
        before = DECODE_STATS["programs_decoded"]
        first = decode(program)
        second = decode(program)
        assert first is second
        assert DECODE_STATS["programs_decoded"] == before + 1

    def test_decode_invalidated_on_program_edit(self):
        """A length-preserving instruction replacement or a label remap
        must not serve stale closures."""
        program = assemble("main:\nli t0, 1\nli t1, 2\nret")
        decoded = decode(program)
        program.instructions[1] = assemble("li t1, 7").instructions[0]
        redecoded = decode(program)
        assert redecoded is not decoded
        machine = SnitchMachine(program)
        machine.run("main")
        assert machine.read_int("t1") == 7
        program.labels["main"] = 1
        assert decode(program) is not redecoded

    def test_two_machines_share_one_decode(self):
        program = assemble("main:\nli t0, 1\nli t1, 2\nret")
        before = DECODE_STATS["programs_decoded"]
        SnitchMachine(program).run("main")
        SnitchMachine(program).run("main")
        assert DECODE_STATS["programs_decoded"] == before + 1

    def test_compiled_kernel_program_is_cached(self):
        module, _ = kernels.matmul(1, 4, 4)
        compiled = api.compile_linalg(module, pipeline="ours")
        assert compiled.program is compiled.program

    def test_cluster_cores_share_one_decode(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, (8, 6))
        y = rng.uniform(-1, 1, (8, 6))
        z = np.zeros((8, 6))
        before = DECODE_STATS["programs_decoded"]
        cluster = run_row_partitioned(
            kernels.sum_kernel,
            lambda module, spec: api.compile_linalg(
                module, pipeline="ours"
            ),
            (8, 6),
            4,
            [x, y, z],
            row_parallel_args=[0, 1, 2],
        )
        np.testing.assert_allclose(cluster.arrays[2], x + y)
        assert DECODE_STATS["programs_decoded"] == before + 1
        assert len(cluster.cores) == 4
