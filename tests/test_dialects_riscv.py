"""Tests for the RISC-V and Snitch dialects (paper Sections 3.1-3.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.dialects import (
    riscv,
    riscv_cf,
    riscv_func,
    riscv_scf,
    riscv_snitch,
    snitch_stream,
)
from repro.dialects.riscv import FloatRegisterType, IntRegisterType
from repro.ir import Block, IRError, Region


def reg(name=""):
    return riscv.GetRegisterOp(IntRegisterType(name)).result


def freg(name=""):
    return riscv.GetRegisterOp(FloatRegisterType(name)).result


class TestRegisterTypes:
    def test_allocated_flag(self):
        assert IntRegisterType("t0").is_allocated
        assert not IntRegisterType().is_allocated

    def test_str(self):
        assert str(IntRegisterType("t0")) == "!rv.reg<t0>"
        assert str(IntRegisterType()) == "!rv.reg"
        assert str(FloatRegisterType("ft3")) == "!rv.freg<ft3>"

    def test_reg_name_errors(self):
        with pytest.raises(IRError):
            riscv.reg_name(reg())  # unallocated


class TestAssemblyPrinting:
    def test_rdrsrs(self):
        add = riscv.AddOp(
            reg("t1"), reg("t2"), result_type=IntRegisterType("t0")
        )
        assert add.assembly_line() == "add t0, t1, t2"

    def test_rdrsimm(self):
        addi = riscv.AddiOp(
            reg("t1"), -8, result_type=IntRegisterType("t0")
        )
        assert addi.assembly_line() == "addi t0, t1, -8"

    def test_li(self):
        li = riscv.LiOp(199, result_type=IntRegisterType("t4"))
        assert li.assembly_line() == "li t4, 199"

    def test_mv(self):
        mv = riscv.MVOp(reg("a0"), result_type=IntRegisterType("t0"))
        assert mv.assembly_line() == "mv t0, a0"

    def test_load(self):
        fld = riscv.FLdOp(
            reg("a1"), 16, result_type=FloatRegisterType("fa5")
        )
        assert fld.assembly_line() == "fld fa5, 16(a1)"

    def test_store(self):
        fsd = riscv.FSdOp(freg("fa0"), reg("a2"), 8)
        assert fsd.assembly_line() == "fsd fa0, 8(a2)"

    def test_fma(self):
        fma = riscv.FMAddDOp(
            freg("ft0"),
            freg("ft1"),
            freg("fa0"),
            result_type=FloatRegisterType("fa0"),
        )
        assert fma.assembly_line() == "fmadd.d fa0, ft0, ft1, fa0"

    def test_get_register_prints_nothing(self):
        op = riscv.GetRegisterOp(IntRegisterType("zero"))
        assert op.assembly_line() is None

    def test_comment(self):
        assert riscv.CommentOp("hi").assembly_line() == "# hi"

    def test_unallocated_fails(self):
        add = riscv.AddOp(reg("t1"), reg("t2"))
        with pytest.raises(IRError):
            add.assembly_line()


class TestControlFlow:
    def test_label(self):
        assert riscv_cf.LabelOp("loop").assembly_line() == "loop:"

    def test_branches(self):
        blt = riscv_cf.BltOp(reg("t0"), reg("t1"), ".body")
        assert blt.assembly_line() == "blt t0, t1, .body"
        bnez = riscv_cf.BnezOp(reg("a0"), ".loop")
        assert bnez.assembly_line() == "bnez a0, .loop"
        assert riscv_cf.JOp("end").assembly_line() == "j end"


class TestRiscvFunc:
    def test_abi_arg_types(self):
        types = riscv_func.abi_arg_types(["int", "float", "int"])
        assert [t.register for t in types] == ["a0", "fa0", "a1"]

    def test_abi_bad_kind(self):
        with pytest.raises(IRError):
            riscv_func.abi_arg_types(["complex"])

    def test_func_requires_allocated_args(self):
        fn = riscv_func.FuncOp(
            "f", [IntRegisterType()]
        )
        with pytest.raises(IRError):
            fn.verify_()

    def test_return_prints_ret(self):
        assert riscv_func.ReturnOp().assembly_line() == "ret"


class TestRiscvScf:
    def test_fresh_types_for_iter_args(self):
        """Body args/results never inherit pre-allocated registers."""
        init = reg("a0")
        loop = riscv_scf.ForOp(reg("zero"), reg("t0"), reg("t1"), [init])
        assert not loop.results[0].type.is_allocated
        assert not loop.body_iter_args[0].type.is_allocated

    def test_verify_needs_yield(self):
        loop = riscv_scf.ForOp(reg("zero"), reg("t0"), reg("t1"))
        with pytest.raises(IRError):
            loop.verify_()

    def test_verify_int_bounds(self):
        loop = riscv_scf.ForOp(freg("ft0"), reg("t0"), reg("t1"))
        loop.body_block.add_op(riscv_scf.YieldOp())
        with pytest.raises(IRError):
            loop.verify_()


class TestFrep:
    def _frep(self, body_ops=None, iter_args=()):
        count = reg("t0")
        frep = riscv_snitch.FrepOuter(count, iter_args)
        if body_ops is not None:
            frep.body_block.add_ops(body_ops)
        return frep

    def test_iter_args_fresh(self):
        acc = freg("ft3")
        frep = self._frep(iter_args=[acc])
        assert not frep.results[0].type.is_allocated

    def test_body_instruction_count(self):
        a, b = freg("ft0"), freg("ft1")
        fadd = riscv.FAddDOp(a, b, result_type=FloatRegisterType("ft2"))
        frep = self._frep([fadd, riscv_snitch.FrepYieldOp()])
        assert frep.body_instruction_count() == 1

    def test_rejects_integer_ops_in_body(self):
        frep = self._frep(
            [
                riscv.AddiOp(reg("t1"), 4),
                riscv_snitch.FrepYieldOp(),
            ]
        )
        with pytest.raises(IRError):
            frep.verify_()

    def test_rejects_missing_yield(self):
        frep = self._frep([riscv.FAddDOp(freg("f0" "t0"), freg("ft1"))])
        with pytest.raises(IRError):
            frep.verify_()

    def test_accepts_fp_body(self):
        x, y = freg("ft0"), freg("ft1")
        acc_init = freg()
        frep = self._frep(iter_args=[acc_init])
        body_acc = frep.body_iter_args[0]
        fma = riscv.FMAddDOp(x, y, body_acc)
        frep.body_block.add_ops(
            [fma, riscv_snitch.FrepYieldOp([fma.rd])]
        )
        frep.verify_()


class TestSnitchSIMD:
    def test_vfmac_tied(self):
        assert riscv_snitch.VFMacSOp.tied == (0, 0)
        acc = freg("ft3")
        mac = riscv_snitch.VFMacSOp(
            acc,
            freg("ft0"),
            freg("ft1"),
            result_type=FloatRegisterType("ft3"),
        )
        assert mac.assembly_line() == "vfmac.s ft3, ft0, ft1"

    def test_vfsum_asm(self):
        acc = freg("ft4")
        vsum = riscv_snitch.VFSumSOp(
            acc, freg("ft3"), result_type=FloatRegisterType("ft4")
        )
        assert vsum.assembly_line() == "vfsum.s ft4, ft3"

    def test_scfgwi(self):
        op = riscv_snitch.ScfgwiOp(reg("t0"), 24)
        assert op.assembly_line() == "scfgwi t0, 24"

    def test_csr_ops(self):
        assert (
            riscv_snitch.CsrsiOp("ssrcfg", 1).assembly_line()
            == "csrsi ssrcfg, 1"
        )
        assert (
            riscv_snitch.CsrciOp("ssrcfg", 1).assembly_line()
            == "csrci ssrcfg, 1"
        )


class TestStridePattern:
    def test_count_and_offsets(self):
        p = snitch_stream.StridePattern([2, 3], [24, 8])
        assert p.count == 6
        assert p.offsets() == [0, 8, 16, 24, 32, 40]

    def test_simplify_drops_unit_dims(self):
        p = snitch_stream.StridePattern([1, 5, 1], [0, 8, 0])
        s = p.simplified()
        assert list(s.ub) == [5]
        assert list(s.strides) == [8]

    def test_simplify_merges_contiguous(self):
        """Paper Fig 6 d: contiguous dims collapse."""
        p = snitch_stream.StridePattern([5, 200], [1600, 8])
        s = p.simplified()
        assert list(s.ub) == [1000]
        assert list(s.strides) == [8]

    def test_simplify_keeps_zero_stride(self):
        """Zero-stride (repetition) dims are preserved for the repeat
        optimization in the scfgwi lowering."""
        p = snitch_stream.StridePattern([200, 5], [8, 0])
        s = p.simplified()
        assert list(s.ub) == [200, 5]
        assert list(s.strides) == [8, 0]

    @given(
        dims=st.lists(
            st.tuples(st.integers(1, 4), st.integers(0, 64)),
            min_size=1,
            max_size=4,
        )
    )
    def test_simplify_preserves_access_sequence(self, dims):
        """Property: simplification never changes the visited offsets."""
        p = snitch_stream.StridePattern(
            [u for u, _ in dims], [s for _, s in dims]
        )
        assert p.offsets() == p.simplified().offsets()

    def test_too_many_streams_rejected(self):
        ptr = reg("t0")
        p = snitch_stream.StridePattern([1], [0])
        with pytest.raises(IRError):
            snitch_stream.StreamingRegionOp(
                [ptr, ptr], [ptr, ptr], [p] * 4
            )

    def test_region_stream_registers(self):
        region = snitch_stream.StreamingRegionOp(
            [reg("t0"), reg("t1")],
            [reg("t2")],
            [snitch_stream.StridePattern([4], [8])] * 3,
        )
        assert region.stream_registers() == ["ft0", "ft1", "ft2"]
        region.verify_()
