"""End-to-end observability across the service boundary.

One ``kernel_service`` request must produce a Perfetto-loadable trace
spanning client -> server -> pool worker -> simulator, all joined by a
single correlation ID (PR-10 acceptance criterion) — plus the id
echoed on the result, in server ``stats`` recent-request records, and
in the opt-in request log.
"""

import json
import threading

import pytest

from repro.obs.tracing import (
    correlation,
    new_correlation_id,
    recording,
)
from repro.service.client import ServiceClient, serve_forever
from repro.service.server import CompileServer, ServiceRequest
from repro.service.store import ArtifactStore
from repro.tools import kernel_service


@pytest.fixture()
def live_server(tmp_path):
    sock = tmp_path / "svc.sock"
    ready = threading.Event()
    thread = threading.Thread(
        target=serve_forever,
        args=(tmp_path / "store", sock),
        kwargs={"workers": 1, "ready": lambda _addr: ready.set()},
        daemon=True,
    )
    thread.start()
    assert ready.wait(10)
    client = ServiceClient(sock)
    yield client
    client.shutdown()
    thread.join(10)


class TestServiceCorrelation:
    def test_result_echoes_a_correlation_id(self, live_server):
        result = live_server.submit(
            ServiceRequest("compile", "relu", (4, 8))
        )
        assert result["correlation_id"]

    def test_explicit_correlation_scope_wins(self, live_server):
        cid = new_correlation_id()
        with correlation(cid):
            result = live_server.submit(
                ServiceRequest("compile", "sum", (4, 8))
            )
        assert result["correlation_id"] == cid

    def test_stats_recent_carries_the_id(self, live_server):
        cid = new_correlation_id()
        with correlation(cid):
            live_server.submit(
                ServiceRequest("compile", "fill", (4, 8))
            )
        recent = live_server.stats()["recent"]
        assert any(
            record["correlation_id"] == cid for record in recent
        )

    def test_single_trace_client_to_simulator(self, live_server):
        """The acceptance criterion: one measure request, one corr
        id, spans from the client down to the simulator."""
        with recording() as recorder:
            result = live_server.submit(
                ServiceRequest("measure", "matmul", (2, 4, 4))
            )
        events = recorder.events_json()
        names = {event["name"] for event in events}
        assert {
            "client.submit",
            "server.submit",
            "worker.job",
            "sim.run",
        } <= names
        cids = {
            event["args"].get("correlation_id") for event in events
        }
        assert cids == {result["correlation_id"]}
        # Perfetto-loadable: a JSON object with complete events.
        doc = recorder.chrome_trace()
        parsed = json.loads(json.dumps(doc))
        assert parsed["traceEvents"]
        assert all(
            event["ph"] in ("M", "X")
            for event in parsed["traceEvents"]
        )

    def test_batch_shares_one_correlation_id(self, live_server):
        results = live_server.batch(
            [
                ServiceRequest("compile", "relu", (4, 8)),
                ServiceRequest("compile", "sum", (4, 8)),
            ]
        )
        cids = {result["correlation_id"] for result in results}
        assert len(cids) == 1 and cids != {""}

    def test_untraced_submit_ships_no_spans(self, live_server):
        result = live_server.submit(
            ServiceRequest("measure", "relu", (4, 8))
        )
        assert "__spans__" not in (result["payload"] or {})

    def test_request_log_greps_by_corr_id(
        self, live_server, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_SERVICE_LOG", "1")
        cid = new_correlation_id()
        with correlation(cid):
            live_server.submit(
                ServiceRequest("compile", "matvec", (4, 8))
            )
        captured = capsys.readouterr()
        assert f"corr_id={cid}" in captured.err


class TestStoreHygiene:
    def test_spans_never_persist_in_the_store(self, tmp_path):
        """Traced artifacts must hit the content-addressed store
        clean — a later untraced hit must not resurrect spans."""
        store = ArtifactStore(tmp_path / "store")
        with CompileServer(store, workers=1) as server:
            with recording():
                first = server.submit(
                    ServiceRequest("measure", "sum", (4, 8))
                )
            second = server.submit(
                ServiceRequest("measure", "sum", (4, 8))
            )
        assert first.source == "computed"
        assert second.source == "store"
        assert "__spans__" not in first.payload
        assert "__spans__" not in second.payload

    def test_request_key_ignores_correlation(self, tmp_path):
        """Correlation ids must not break content addressing."""
        store = ArtifactStore(tmp_path / "store")
        with CompileServer(store, workers=1) as server:
            with correlation(new_correlation_id()):
                first = server.submit(
                    ServiceRequest("compile", "relu", (4, 8))
                )
            with correlation(new_correlation_id()):
                second = server.submit(
                    ServiceRequest("compile", "relu", (4, 8))
                )
        assert first.key == second.key
        assert second.source == "store"


class TestInProcessBackend:
    def test_cli_corr_id_round_trip(self, tmp_path, capsys):
        code = kernel_service.main(
            [
                "submit",
                "measure",
                "relu",
                "4",
                "8",
                "--store",
                str(tmp_path / "store"),
                "--corr-id",
                "cafe0123cafe0123",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "corr=cafe0123cafe0123" in out
