"""End-to-end integration tests: every kernel through every pipeline,
validated against the numpy oracles."""

import numpy as np
import pytest

from repro import api, kernels
from repro.transforms.pipelines import PIPELINE_NAMES

KERNEL_CASES = [
    ("sum", kernels.sum_kernel, (8, 20)),
    ("fill", kernels.fill, (8, 20)),
    ("relu", kernels.relu, (8, 20)),
    ("matmul-row", kernels.matmul, (1, 40, 8)),
    ("matmul-square", kernels.matmul, (4, 16, 8)),
    ("matvec", kernels.matvec, (5, 40)),
    ("conv3x3", kernels.conv3x3, (4, 8)),
    ("max_pool3x3", kernels.max_pool3x3, (4, 8)),
    ("sum_pool3x3", kernels.sum_pool3x3, (4, 8)),
    ("matmul_t", kernels.matmul_transposed, (4, 16, 8)),
]


def run_case(builder, sizes, pipeline, seed=7):
    module, spec = builder(*sizes)
    compiled = api.compile_linalg(module, pipeline=pipeline)
    arguments = spec.random_arguments(seed=seed)
    result = api.run_kernel(compiled, arguments)
    expected = spec.reference(*arguments)
    return spec, compiled, result, expected


@pytest.mark.parametrize("pipeline", PIPELINE_NAMES)
@pytest.mark.parametrize(
    "name,builder,sizes", KERNEL_CASES, ids=[c[0] for c in KERNEL_CASES]
)
def test_kernel_correct(name, builder, sizes, pipeline):
    """The central correctness matrix: 10 kernels x 9 pipelines."""
    spec, compiled, result, expected = run_case(builder, sizes, pipeline)
    for got, want in zip(result.arrays, expected):
        if want is None:
            continue
        np.testing.assert_allclose(got, want, atol=1e-9, rtol=1e-12)


@pytest.mark.parametrize(
    "name,builder,sizes", KERNEL_CASES, ids=[c[0] for c in KERNEL_CASES]
)
def test_ours_beats_baselines(name, builder, sizes):
    """Our flow is strictly faster than both comparison flows."""
    _, _, ours, _ = run_case(builder, sizes, "ours")
    _, _, clang, _ = run_case(builder, sizes, "clang")
    _, _, mlir, _ = run_case(builder, sizes, "mlir")
    assert ours.trace.cycles < clang.trace.cycles
    assert ours.trace.cycles < mlir.trace.cycles


@pytest.mark.parametrize(
    "name,builder,sizes", KERNEL_CASES, ids=[c[0] for c in KERNEL_CASES]
)
def test_ours_no_explicit_memory_traffic(name, builder, sizes):
    """With streams + fused fill, no fld/fsd/lw/sw executes at all."""
    _, _, result, _ = run_case(builder, sizes, "ours")
    assert result.trace.loads == 0
    assert result.trace.stores == 0


def test_results_deterministic():
    """The simulator is deterministic (paper Section 4.1)."""
    a = run_case(kernels.matmul, (1, 40, 8), "ours")[2]
    b = run_case(kernels.matmul, (1, 40, 8), "ours")[2]
    assert a.trace.cycles == b.trace.cycles
    assert a.trace.histogram == b.trace.histogram
    np.testing.assert_array_equal(a.arrays[2], b.arrays[2])


@pytest.mark.parametrize("m,k,n", [(1, 4, 4), (2, 8, 4), (3, 5, 7), (1, 200, 5)])
def test_matmul_shape_sweep(m, k, n):
    spec, _, result, expected = run_case(
        kernels.matmul, (m, k, n), "ours"
    )
    np.testing.assert_allclose(
        result.arrays[2], expected[2], atol=1e-9
    )


@pytest.mark.parametrize("n,m", [(1, 4), (2, 2), (3, 6), (7, 5)])
def test_elementwise_odd_shapes(n, m):
    for builder in (kernels.sum_kernel, kernels.relu, kernels.fill):
        spec, _, result, expected = run_case(builder, (n, m), "ours")
        for got, want in zip(result.arrays, expected):
            if want is not None:
                np.testing.assert_allclose(got, want, atol=1e-12)


def test_scalar_argument_passed_in_fa0():
    module, spec = kernels.fill(2, 3)
    compiled = api.compile_linalg(module, pipeline="ours")
    result = api.run_kernel(compiled, [2.5, np.zeros((2, 3))])
    np.testing.assert_array_equal(
        result.arrays[1], np.full((2, 3), 2.5)
    )


def test_inputs_not_clobbered():
    module, spec = kernels.sum_kernel(4, 4)
    compiled = api.compile_linalg(module, pipeline="ours")
    args = spec.random_arguments(seed=1)
    result = api.run_kernel(compiled, args)
    np.testing.assert_array_equal(result.arrays[0], args[0])
    np.testing.assert_array_equal(result.arrays[1], args[1])
