"""Tests for canonicalization, identity-move elimination and the static
stream-balance verifier."""

import pytest

from repro.dialects import riscv, riscv_func, riscv_snitch, snitch_stream
from repro.dialects.builtin import ModuleOp
from repro.dialects.riscv import FloatRegisterType, IntRegisterType
from repro.dialects.snitch_stream import StreamingRegionOp, StridePattern
from repro.ir import Builder
from repro.transforms.canonicalize import (
    CanonicalizePass,
    EliminateIdentityMovesPass,
)
from repro.transforms.verify_streams import (
    StreamBalanceError,
    VerifyStreamsPass,
)


def make_func(kinds=("int",)):
    fn = riscv_func.FuncOp("f", riscv_func.abi_arg_types(list(kinds)))
    return fn, Builder.at_end(fn.entry_block)


class TestCanonicalize:
    def test_li_dedup_same_block(self):
        fn, b = make_func()
        a = b.insert(riscv.LiOp(8))
        c = b.insert(riscv.LiOp(8))
        use = b.insert(riscv.AddOp(a.rd, c.rd))
        b.insert(riscv.SwOp(use.rd, fn.args[0], 0))
        b.insert(riscv_func.ReturnOp())
        CanonicalizePass().run(ModuleOp([fn]))
        lis = [
            op for op in fn.walk() if isinstance(op, riscv.LiOp)
        ]
        assert len(lis) == 1
        assert use.operands[0] is use.operands[1]

    def test_li_different_values_kept(self):
        fn, b = make_func()
        a = b.insert(riscv.LiOp(8))
        c = b.insert(riscv.LiOp(9))
        b.insert(riscv.SwOp(a.rd, fn.args[0], 0))
        b.insert(riscv.SwOp(c.rd, fn.args[0], 4))
        b.insert(riscv_func.ReturnOp())
        CanonicalizePass().run(ModuleOp([fn]))
        assert (
            len([op for op in fn.walk() if isinstance(op, riscv.LiOp)])
            == 2
        )

    def test_li_not_deduped_across_blocks(self):
        """Dominance: constants in sibling loop bodies stay separate."""
        from repro.dialects import riscv_scf

        fn, b = make_func()
        lb = b.insert(riscv.LiOp(0)).rd
        ub = b.insert(riscv.LiOp(2)).rd
        step = b.insert(riscv.LiOp(1)).rd
        loop = riscv_scf.ForOp(lb, ub, step)
        b.insert(loop)
        inner = Builder.at_end(loop.body_block)
        li_in = inner.insert(riscv.LiOp(2))  # same value as ub's li
        inner.insert(riscv.SwOp(li_in.rd, fn.args[0], 0))
        inner.insert(riscv_scf.YieldOp())
        b.insert(riscv_func.ReturnOp())
        CanonicalizePass().run(ModuleOp([fn]))
        assert li_in.parent is not None  # survived

    def test_addi_zero_folded(self):
        fn, b = make_func()
        base = b.insert(riscv.MVOp(fn.args[0]))
        offset = b.insert(riscv.AddiOp(base.rd, 0))
        b.insert(riscv.SwOp(offset.rd, offset.rd, 0))
        b.insert(riscv_func.ReturnOp())
        CanonicalizePass().run(ModuleOp([fn]))
        assert offset.parent is None

    def test_pinned_li_not_shared(self):
        fn, b = make_func()
        a = b.insert(riscv.LiOp(8, result_type=IntRegisterType("t0")))
        c = b.insert(riscv.LiOp(8))
        b.insert(riscv.SwOp(c.rd, fn.args[0], 0))
        b.insert(riscv_func.ReturnOp())
        CanonicalizePass().run(ModuleOp([fn]))
        assert a.parent is not None and c.parent is not None


class TestIdentityMoves:
    def test_same_register_move_erased(self):
        fn, b = make_func()
        mv = b.insert(
            riscv.MVOp(fn.args[0], result_type=IntRegisterType("a0"))
        )
        b.insert(riscv.SwOp(mv.rd, mv.rd, 0))
        b.insert(riscv_func.ReturnOp())
        EliminateIdentityMovesPass().run(ModuleOp([fn]))
        assert mv.parent is None

    def test_cross_register_move_kept(self):
        fn, b = make_func()
        mv = b.insert(
            riscv.MVOp(fn.args[0], result_type=IntRegisterType("t0"))
        )
        b.insert(riscv.SwOp(mv.rd, mv.rd, 0))
        b.insert(riscv_func.ReturnOp())
        EliminateIdentityMovesPass().run(ModuleOp([fn]))
        assert mv.parent is not None

    def test_stream_register_fmv_kept(self):
        """fmv.d ft0, ft0 pops *and* pushes while streaming: keep it."""
        fn, b = make_func([])
        src = b.insert(
            riscv.GetRegisterOp(FloatRegisterType("ft0"))
        ).result
        mv = b.insert(
            riscv.FMVOp(src, result_type=FloatRegisterType("ft0"))
        )
        b.insert(riscv_func.ReturnOp())
        EliminateIdentityMovesPass().run(ModuleOp([fn]))
        assert mv.parent is not None


class TestStreamBalance:
    def _region(self, pattern_count, read_count, frep_iterations=None):
        fn, b = make_func(["int"])
        ptr = b.insert(riscv.MVOp(fn.args[0])).rd
        region = StreamingRegionOp(
            [ptr], [], [StridePattern([pattern_count], [8])]
        )
        b.insert(region)
        inner = Builder.at_end(region.body_block)
        target = inner
        if frep_iterations is not None:
            count = inner.insert(riscv.LiOp(frep_iterations - 1)).rd
            frep = riscv_snitch.FrepOuter(count)
            inner.insert(frep)
            target = Builder.at_end(frep.body_block)
        for _ in range(read_count):
            target.insert(
                riscv_snitch.ReadOp(region.body_block.args[0])
            )
        if frep_iterations is not None:
            target.insert(riscv_snitch.FrepYieldOp())
        b.insert(riscv_func.ReturnOp())
        return ModuleOp([fn])

    def test_balanced_plain(self):
        VerifyStreamsPass().run(self._region(3, 3))

    def test_balanced_with_frep(self):
        VerifyStreamsPass().run(
            self._region(12, 3, frep_iterations=4)
        )

    def test_underconsumption_detected(self):
        with pytest.raises(StreamBalanceError):
            VerifyStreamsPass().run(self._region(4, 3))

    def test_overconsumption_detected(self):
        with pytest.raises(StreamBalanceError):
            VerifyStreamsPass().run(
                self._region(6, 2, frep_iterations=4)
            )

    def test_pipeline_integration(self):
        """The verifier runs inside the 'ours' pipeline and passes for
        every kernel (already exercised end-to-end); here: it really is
        scheduled."""
        from repro.transforms.pipelines import build_pipeline

        spec = build_pipeline("ours").pipeline_spec
        assert "verify-streams" in spec
