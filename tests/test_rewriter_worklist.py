"""Worklist rewrite driver: stale-op handling, dispatch, views.

The headline regression here is stale-op rewriting: ``Operation.erase``
detaches the op but ops nested inside its regions keep their ``parent``
links, so a pre-seeded worklist (or the naive driver's pre-collected
walk list) can hold ops living inside an already-erased subtree.  The
driver must drop those instead of rewriting dead IR (which would, for
example, resurrect uses of outside values through RAUW).
"""

import pytest

from repro.dialects import arith, builtin
from repro.ir import (
    Block,
    IRError,
    Operation,
    PatternIndex,
    Region,
    RewritePattern,
    TypedPattern,
    apply_patterns,
    apply_patterns_naive,
    single_block_region,
)


class _RegionHolder(Operation):
    """Test op owning one region (erased by ``_EraseHolder``)."""

    name = "test.region_holder"


class _EraseHolder(TypedPattern):
    op_type = _RegionHolder

    def rewrite(self, op, rewriter):
        rewriter.erase_matched_op()


class _RecordAdds(TypedPattern):
    """Observes every AddiOp the driver actually hands to patterns."""

    op_type = arith.AddiOp

    def __init__(self):
        self.seen: list[Operation] = []

    def rewrite(self, op, rewriter):
        self.seen.append(op)


class _RewriteAddsToLhs(TypedPattern):
    """Replaces ``a + b`` with ``a`` — corrupts use lists if applied to
    an op inside an erased subtree (RAUW would re-register uses)."""

    op_type = arith.AddiOp

    def rewrite(self, op, rewriter):
        rewriter.replace_matched_op([], new_results=[op.lhs])


def _module_with_nested_add():
    """A module holding a region op whose body uses an outside constant.

    Walk order visits the holder *before* the nested add, so a pattern
    erasing the holder leaves the (already enqueued) nested add stale.
    """
    constant = arith.ConstantOp.from_int(7)
    inner = arith.AddiOp(constant.result, constant.result)
    holder = _RegionHolder(regions=[single_block_region([inner])])
    module = builtin.ModuleOp([constant, holder])
    return module, constant, inner


@pytest.mark.parametrize(
    "driver", [apply_patterns, apply_patterns_naive]
)
class TestStaleOpDropped:
    def test_nested_op_of_erased_subtree_not_rewritten(self, driver):
        module, constant, inner = _module_with_nested_add()
        recorder = _RecordAdds()
        driver(module, [_EraseHolder(), recorder])
        assert inner.parent is not None  # the stale-parent hazard
        assert recorder.seen == []  # ...but the driver dropped it

    def test_no_use_resurrection(self, driver):
        """Rewriting the stale add would RAUW dead uses back onto the
        constant; erasing the subtree must leave it unused."""
        module, constant, inner = _module_with_nested_add()
        driver(module, [_EraseHolder(), _RewriteAddsToLhs()])
        assert not constant.result.has_uses

    def test_detached_attachment_check(self, driver):
        module, constant, inner = _module_with_nested_add()
        assert inner.is_attached_to(module)
        driver(module, [_EraseHolder()])
        assert not inner.is_attached_to(module)
        assert constant.is_attached_to(module)


class TestWorklistDriver:
    def _fold_module(self):
        a = arith.ConstantOp.from_int(7)
        zero = arith.ConstantOp.from_int(0)
        add = arith.AddiOp(a.result, zero.result)
        use = arith.AddiOp(add.result, add.result)
        return builtin.ModuleOp([a, zero, add, use]), add, use

    def test_follow_up_work_enqueued(self):
        """Folding ``x + 0`` exposes ``7 + 7``-style follow-ups through
        user re-enqueueing, reaching the same fixpoint as re-walking."""

        class FoldAddZero(TypedPattern):
            op_type = arith.AddiOp

            def rewrite(self, op, rewriter):
                owner = op.rhs.owner
                if (
                    isinstance(owner, arith.ConstantOp)
                    and owner.value.value == 0
                ):
                    rewriter.replace_matched_op(
                        [], new_results=[op.lhs]
                    )

        module, add, use = self._fold_module()
        assert apply_patterns(module, [FoldAddZero()])
        assert add.parent is None
        assert use.operands[0].owner.value.value == 7
        assert not apply_patterns(module, [FoldAddZero()])

    def test_divergent_pattern_detected(self):
        class Flip(RewritePattern):
            def match_and_rewrite(self, op, rewriter):
                if isinstance(op, arith.AddiOp):
                    rewriter.replace_op(
                        op, arith.AddiOp(op.rhs, op.lhs)
                    )

        module, *_ = self._fold_module()
        with pytest.raises(IRError):
            apply_patterns(module, [Flip()], max_iterations=5)

    def test_in_place_update_revisits_subtree(self):
        """A pattern swapping a region body in place (reporting only
        ``changed``) still gets its new body ops visited."""

        class Renest(TypedPattern):
            op_type = _RegionHolder

            def rewrite(self, op, rewriter):
                if op.attributes.get("done"):
                    return
                old = op.body.block
                fresh = Block()
                fresh.add_op(arith.ConstantOp.from_int(3))
                op.regions[0].blocks.clear()
                old.parent = None
                op.regions[0].add_block(fresh)
                op.attributes["done"] = True
                rewriter.changed = True

        recorder = _RecordConstants()
        holder = _RegionHolder(regions=[single_block_region([])])
        module = builtin.ModuleOp([holder])
        apply_patterns(module, [Renest(), recorder])
        assert [op.value.value for op in recorder.seen] == [3]


class TestAdjacencyReEnqueue:
    """Erasing an op must re-enqueue its block neighbours: patterns
    that match on adjacency (like fuse-fill's ``prev_op`` probe) become
    applicable once an intervening op disappears."""

    @staticmethod
    def _patterns():
        class EraseDeadMul(TypedPattern):
            op_type = arith.MuliOp

            def rewrite(self, op, rewriter):
                if not op.result.has_uses:
                    rewriter.erase_matched_op()

        class EraseDeadAdd(TypedPattern):
            op_type = arith.AddiOp

            def rewrite(self, op, rewriter):
                if not op.result.has_uses:
                    rewriter.erase_matched_op()

        class MarkAddAfterConstant(TypedPattern):
            op_type = arith.AddiOp

            def rewrite(self, op, rewriter):
                if (
                    op.result.has_uses
                    and isinstance(op.prev_op, arith.ConstantOp)
                    and "after-const" not in op.attributes
                ):
                    op.attributes["after-const"] = op.prev_op.value
                    rewriter.changed = True

        return [MarkAddAfterConstant(), EraseDeadMul(), EraseDeadAdd()]

    @staticmethod
    def _module():
        # [fill, c2, mid, consumer, user2, sink]: `consumer` is visited
        # while `mid` still sits between it and the constants; `mid`
        # only becomes dead (and erasable) after `user2` is erased, and
        # shares no values with `consumer` — only the adjacency
        # re-enqueue can revisit `consumer` for the position match.
        fill = arith.ConstantOp.from_int(7)
        c2 = arith.ConstantOp.from_int(3)
        mid = arith.MuliOp(c2.result, c2.result)
        consumer = arith.AddiOp(fill.result, fill.result)
        user2 = arith.AddiOp(mid.result, mid.result)
        sink = Operation(operands=[consumer.result])
        module = builtin.ModuleOp(
            [fill, c2, mid, consumer, user2, sink]
        )
        return module, mid, consumer

    @pytest.mark.parametrize(
        "driver", [apply_patterns, apply_patterns_naive]
    )
    def test_position_match_found_after_erasure(self, driver):
        module, mid, consumer = self._module()
        driver(module, self._patterns())
        assert mid.parent is None  # the intervening op was erased
        assert "after-const" in consumer.attributes


class _RecordConstants(TypedPattern):
    op_type = arith.ConstantOp

    def __init__(self):
        self.seen: list[Operation] = []

    def rewrite(self, op, rewriter):
        self.seen.append(op)


class TestPatternIndex:
    def test_typed_dispatch(self):
        index = PatternIndex([_RecordAdds(), _RecordConstants()])
        adds = index.patterns_for(arith.AddiOp)
        consts = index.patterns_for(arith.ConstantOp)
        assert len(adds) == 1 and isinstance(adds[0], _RecordAdds)
        assert len(consts) == 1 and isinstance(
            consts[0], _RecordConstants
        )
        assert index.patterns_for(arith.MulfOp) == ()

    def test_generic_patterns_apply_everywhere(self):
        class Generic(RewritePattern):
            def match_and_rewrite(self, op, rewriter):
                pass

        generic = Generic()
        typed = _RecordAdds()
        index = PatternIndex([generic, typed])
        # Registration order is preserved per class.
        assert index.patterns_for(arith.AddiOp) == (generic, typed)
        assert index.patterns_for(arith.ConstantOp) == (generic,)


class TestLinkedListViews:
    def test_block_ops_sequence_protocol(self):
        block = Block()
        ops = [arith.ConstantOp.from_int(i) for i in range(5)]
        block.add_ops(ops)
        view = block.ops
        assert len(view) == 5
        assert bool(view)
        assert view[0] is ops[0] and view[-1] is ops[-1]
        assert view[2] is ops[2]
        assert list(reversed(view)) == ops[::-1]
        assert view == tuple(ops)
        assert view.index(ops[3]) == 3
        assert ops[1] in view
        with pytest.raises(IndexError):
            view[5]

    def test_iteration_safe_against_erasing_current(self):
        block = Block()
        ops = [arith.ConstantOp.from_int(i) for i in range(4)]
        block.add_ops(ops)
        visited = []
        for op in block.ops:
            visited.append(op.value.value)
            op.erase()
        assert visited == [0, 1, 2, 3]
        assert len(block.ops) == 0
        assert block.first_op is None and block.last_op is None

    def test_intrusive_links_maintained(self):
        block = Block()
        a, b, c = (arith.ConstantOp.from_int(i) for i in range(3))
        block.add_ops([a, c])
        block.insert_op_before(b, c)
        assert a.next_op is b and b.prev_op is a
        assert b.next_op is c and c.prev_op is b
        b.detach()
        assert a.next_op is c and c.prev_op is a
        assert b.prev_op is None and b.next_op is None

    def test_operands_live_view(self):
        a = arith.ConstantOp.from_int(1)
        b = arith.ConstantOp.from_int(2)
        add = arith.AddiOp(a.result, a.result)
        view = add.operands
        assert view == (a.result, a.result)
        assert view[0:2] == (a.result, a.result)  # slices snapshot
        add.set_operand(1, b.result)
        assert view[1] is b.result  # the view is live
        assert len(view) == 2
        assert list(reversed(view)) == [b.result, a.result]
