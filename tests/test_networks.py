"""Tests for the NSNet2/AlexNet network-level drivers."""

import pytest

from repro.kernels import networks


class TestLayerConfigs:
    def test_nsnet2_layer_mix(self):
        layers = networks.nsnet2_layers()
        names = [layer.name for layer in layers]
        assert names[0] == "fc1"
        kinds = {layer.builder.__name__ for layer in layers}
        # matmuls + activations + an elementwise combine
        assert "matmul" in kinds and "relu" in kinds
        assert "sum_kernel" in kinds

    def test_alexnet_layer_mix(self):
        layers = networks.alexnet_layers()
        kinds = [layer.builder.__name__ for layer in layers]
        assert "conv3x3" in kinds
        assert "max_pool3x3" in kinds
        assert kinds.count("matmul") == 2  # the FC head

    def test_shapes_fit_tcdm(self):
        """Paper Section 4.1: operands must fit the 128 KiB TCDM."""
        for layers in (
            networks.nsnet2_layers(),
            networks.alexnet_layers(),
        ):
            for layer in layers:
                _, spec = layer.build()
                total = sum(
                    a.shape and __import__("numpy").prod(a.shape) * 8
                    or 0
                    for a in spec.arguments
                    if hasattr(a, "shape")
                )
                assert total < 128 * 1024, layer.name


class TestRunNetwork:
    def test_nsnet2_runs_and_validates(self):
        result = networks.run_network(
            "NSNet2", networks.nsnet2_layers(width=20)
        )
        assert len(result.layers) == 9
        assert result.total_cycles > 0
        assert 0.5 < result.mean_utilization <= 1.0

    def test_alexnet_runs_and_validates(self):
        result = networks.run_network(
            "AlexNet", networks.alexnet_layers(tile=8)
        )
        assert result.total_flops > 0
        assert 0.5 < result.mean_utilization <= 1.0

    def test_ours_beats_baseline_at_network_level(self):
        layers = networks.nsnet2_layers(width=20)
        ours = networks.run_network("n", layers, pipeline="ours")
        base = networks.run_network("n", layers, pipeline="clang")
        assert base.total_cycles > 3 * ours.total_cycles

    def test_report_format(self):
        result = networks.run_network(
            "NSNet2", networks.nsnet2_layers(width=20)
        )
        text = result.report()
        assert "NSNet2" in text
        assert "fc1" in text

    def test_validation_catches_mismatch(self, monkeypatch):
        layers = networks.nsnet2_layers(width=20)[:1]
        import numpy as np

        module, spec = layers[0].build()
        real_reference = spec.reference

        def bad_builder(*sizes):
            module, spec = networks.builders.matmul(*sizes)
            spec.reference = lambda *args: [
                None,
                None,
                real_reference(*args)[2] + 1.0,
            ]
            return module, spec

        layers[0].builder = bad_builder
        with pytest.raises(AssertionError):
            networks.run_network("n", layers)
