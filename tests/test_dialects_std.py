"""Tests for the standard dialects: arith, func, scf, memref, linalg."""

import pytest

from repro.dialects import arith, builtin, func, linalg, memref, scf
from repro.ir import (
    AffineMap,
    Block,
    FloatAttr,
    IRError,
    MemRefType,
    Region,
    f64,
    index,
    verify,
)


class TestArith:
    def test_constant_int(self):
        c = arith.ConstantOp.from_int(3)
        assert c.value.value == 3
        assert c.result.type == index

    def test_constant_float(self):
        c = arith.ConstantOp.from_float(1.5, f64)
        assert isinstance(c.value, FloatAttr)
        assert c.result.type == f64

    def test_binary_op_types(self):
        c = arith.ConstantOp.from_float(2.0, f64)
        add = arith.AddfOp(c.result, c.result)
        assert add.result.type == f64
        assert add.lhs is c.result and add.rhs is c.result

    def test_mixed_types_rejected(self):
        a = arith.ConstantOp.from_float(1.0, f64)
        b = arith.ConstantOp.from_int(1)
        bad = arith.AddfOp(a.result, b.result)
        with pytest.raises(IRError):
            bad.verify_()

    def test_float_binary_registry(self):
        assert arith.FLOAT_BINARY_OPS["arith.mulf"] is arith.MulfOp
        assert len(arith.FLOAT_BINARY_OPS) == 6


class TestFunc:
    def test_signature(self):
        fn = func.FuncOp("k", [MemRefType(f64, (4,)), f64])
        assert fn.sym_name == "k"
        assert len(fn.args) == 2
        assert fn.args[1].type == f64

    def test_entry_args_match_signature(self):
        fn = func.FuncOp("k", [f64])
        fn.entry_block.args[0].type = index
        with pytest.raises(IRError):
            fn.verify_()


class TestScf:
    def _loop(self, iter_args=()):
        lb = arith.ConstantOp.from_int(0)
        ub = arith.ConstantOp.from_int(10)
        step = arith.ConstantOp.from_int(1)
        loop = scf.ForOp(lb.result, ub.result, step.result, iter_args)
        return [lb, ub, step, loop], loop

    def test_structure(self):
        ops, loop = self._loop()
        loop.body_block.add_op(scf.YieldOp())
        assert loop.induction_variable.type == index
        assert loop.iter_args == ()
        verify(builtin.ModuleOp(ops))

    def test_iter_args_carried(self):
        c = arith.ConstantOp.from_float(0.0, f64)
        ops, loop = self._loop([c.result])
        body_acc = loop.body_iter_args[0]
        add = arith.AddfOp(body_acc, body_acc)
        loop.body_block.add_ops([add, scf.YieldOp([add.result])])
        assert loop.results[0].type == f64
        verify(builtin.ModuleOp([c] + ops))

    def test_yield_arity_checked(self):
        c = arith.ConstantOp.from_float(0.0, f64)
        ops, loop = self._loop([c.result])
        loop.body_block.add_op(scf.YieldOp())  # missing value
        with pytest.raises(IRError):
            loop.verify_()

    def test_missing_terminator(self):
        ops, loop = self._loop()
        with pytest.raises(IRError):
            loop.verify_()


class TestMemref:
    def test_load_store_roundtrip_types(self):
        buf_type = MemRefType(f64, (4, 4))
        alloc = memref.AllocOp(buf_type)
        i = arith.ConstantOp.from_int(0)
        load = memref.LoadOp(alloc.result, [i.result, i.result])
        assert load.result.type == f64
        store = memref.StoreOp(load.result, alloc.result, [i.result, i.result])
        assert store.value is load.result

    def test_load_rank_checked(self):
        alloc = memref.AllocOp(MemRefType(f64, (4, 4)))
        i = arith.ConstantOp.from_int(0)
        with pytest.raises(IRError):
            memref.LoadOp(alloc.result, [i.result]).verify_()

    def test_store_type_checked(self):
        alloc = memref.AllocOp(MemRefType(f64, (4,)))
        i = arith.ConstantOp.from_int(0)
        bad = memref.StoreOp(i.result, alloc.result, [i.result])
        with pytest.raises(IRError):
            bad.verify_()

    def test_load_requires_memref(self):
        i = arith.ConstantOp.from_int(0)
        with pytest.raises(IRError):
            memref.LoadOp(i.result, [])


def _matmul_generic(m=2, k=3, n=4):
    a = memref.AllocOp(MemRefType(f64, (m, k)))
    b = memref.AllocOp(MemRefType(f64, (k, n)))
    c = memref.AllocOp(MemRefType(f64, (m, n)))
    block = Block([f64, f64, f64])
    prod = arith.MulfOp(block.args[0], block.args[1])
    acc = arith.AddfOp(block.args[2], prod.result)
    block.add_ops([prod, acc, linalg.YieldOp([acc.result])])
    generic = linalg.GenericOp(
        inputs=[a.result, b.result],
        outputs=[c.result],
        indexing_maps=[
            AffineMap.from_callable(3, lambda i, j, kk: (i, kk)),
            AffineMap.from_callable(3, lambda i, j, kk: (kk, j)),
            AffineMap.from_callable(3, lambda i, j, kk: (i, j)),
        ],
        iterator_types=["parallel", "parallel", "reduction"],
        body=Region([block]),
    )
    return [a, b, c, generic], generic


class TestLinalg:
    def test_generic_segments(self):
        ops, generic = _matmul_generic()
        assert len(generic.inputs) == 2
        assert len(generic.outputs) == 1

    def test_iteration_bounds_matmul(self):
        ops, generic = _matmul_generic(2, 3, 4)
        assert generic.iteration_bounds() == (2, 4, 3)

    def test_iteration_bounds_window(self):
        """Pooling-style window: bounds inferred via sliding relation."""
        image = memref.AllocOp(MemRefType(f64, (6, 10)))
        out = memref.AllocOp(MemRefType(f64, (4, 8)))
        block = Block([f64, f64])
        fmax = arith.MaximumfOp(block.args[1], block.args[0])
        block.add_ops([fmax, linalg.YieldOp([fmax.result])])
        generic = linalg.GenericOp(
            inputs=[image.result],
            outputs=[out.result],
            indexing_maps=[
                AffineMap.from_callable(
                    4, lambda i, j, ki, kj: (i + ki, j + kj)
                ),
                AffineMap.from_callable(4, lambda i, j, ki, kj: (i, j)),
            ],
            iterator_types=[
                "parallel", "parallel", "reduction", "reduction",
            ],
            body=Region([block]),
        )
        assert generic.iteration_bounds() == (4, 8, 3, 3)

    def test_verify_catches_bad_iterator(self):
        ops, generic = _matmul_generic()
        from repro.ir.attributes import ArrayAttr, StringAttr

        generic.attributes["iterator_types"] = ArrayAttr(
            [StringAttr("sideways")] * 3
        )
        with pytest.raises(IRError):
            generic.verify_()

    def test_verify_map_count(self):
        ops, generic = _matmul_generic()
        from repro.ir.attributes import ArrayAttr

        generic.attributes["indexing_maps"] = ArrayAttr(
            generic.indexing_maps[:2]
        )
        with pytest.raises(IRError):
            generic.verify_()

    def test_fill_requires_matching_scalar(self):
        buf = memref.AllocOp(MemRefType(f64, (4,)))
        bad = arith.ConstantOp.from_int(0)
        fill = linalg.FillOp(bad.result, buf.result)
        with pytest.raises(IRError):
            fill.verify_()
