"""Unit + property tests for affine expressions and maps."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import AffineConstantExpr, AffineDimExpr, AffineMap
from repro.ir.affine_map import expr_uses_dim, substitute_dims


class TestAffineExpr:
    def test_dim_evaluate(self):
        assert AffineDimExpr(1).evaluate((10, 20)) == 20

    def test_constant_evaluate(self):
        assert AffineConstantExpr(7).evaluate((1, 2)) == 7

    def test_operator_sugar(self):
        d0 = AffineDimExpr(0)
        expr = d0 * 5 + 3
        assert expr.evaluate((2,)) == 13

    def test_radd_rmul(self):
        d0 = AffineDimExpr(0)
        assert (3 + d0).evaluate((4,)) == 7
        assert (3 * d0).evaluate((4,)) == 12

    def test_expr_uses_dim(self):
        expr = AffineDimExpr(0) * 5 + AffineDimExpr(2)
        assert expr_uses_dim(expr, 0)
        assert not expr_uses_dim(expr, 1)
        assert expr_uses_dim(expr, 2)

    def test_substitute_dims(self):
        expr = AffineDimExpr(0) + AffineDimExpr(1)
        new = substitute_dims(expr, {0: AffineDimExpr(2) * 4})
        assert new.evaluate((0, 1, 3)) == 13


class TestAffineMap:
    def test_identity(self):
        m = AffineMap.identity(3)
        assert m.evaluate((1, 2, 3)) == (1, 2, 3)

    def test_from_callable(self):
        m = AffineMap.from_callable(2, lambda i, j: (i * 5 + j,))
        assert m.evaluate((2, 3)) == (13,)

    def test_from_callable_single_expr(self):
        m = AffineMap.from_callable(2, lambda i, j: j)
        assert m.num_results == 1
        assert m.evaluate((4, 9)) == (9,)

    def test_constant_map(self):
        m = AffineMap.constant(2, [7, 8])
        assert m.evaluate((100, 200)) == (7, 8)

    def test_evaluate_wrong_arity(self):
        with pytest.raises(ValueError):
            AffineMap.identity(2).evaluate((1,))

    def test_unit_deltas_identity(self):
        m = AffineMap.identity(2)
        assert m.unit_deltas() == [(1, 0), (0, 1)]

    def test_unit_deltas_window(self):
        m = AffineMap.from_callable(4, lambda i, j, ki, kj: (i + ki, j + kj))
        deltas = m.unit_deltas()
        assert deltas[0] == (1, 0)
        assert deltas[2] == (1, 0)
        assert deltas[3] == (0, 1)

    def test_is_linear(self):
        assert AffineMap.from_callable(2, lambda i, j: (i * 3 + j,)).is_linear()

    def test_strides_matvec_x(self):
        """Paper Fig 7: X map (d0,d1,d2) -> (d1) over a 200-vector."""
        m = AffineMap.from_callable(3, lambda d0, d1, d2: (d1,))
        assert m.strides((8,)) == (0, 8, 0)

    def test_strides_matvec_y(self):
        """Paper Fig 7: Y map (d0,d1,d2) -> (d0*5+d2, d1)."""
        m = AffineMap.from_callable(
            3, lambda d0, d1, d2: (d0 * 5 + d2, d1)
        )
        # Y is 5x200 f64: byte strides (1600, 8)
        assert m.strides((1600, 8)) == (8000, 8, 1600)

    def test_strides_arity_error(self):
        m = AffineMap.identity(2)
        with pytest.raises(ValueError):
            m.strides((8,))

    def test_offset_zero_for_dim_maps(self):
        m = AffineMap.from_callable(2, lambda i, j: (i, j))
        assert m.offset((100, 8)) == 0

    def test_offset_with_constant(self):
        m = AffineMap.from_callable(1, lambda i: (i + 3,))
        assert m.offset((8,)) == 24

    @given(
        coeffs=st.lists(st.integers(0, 9), min_size=2, max_size=4),
        point=st.lists(st.integers(0, 20), min_size=2, max_size=4),
    )
    def test_strides_predict_evaluation(self, coeffs, point):
        """For linear maps, offset(p) == sum(stride_d * p_d)."""
        n = min(len(coeffs), len(point))
        coeffs, point = coeffs[:n], point[:n]
        expr = AffineConstantExpr(0)
        for d, c in enumerate(coeffs):
            expr = expr + AffineDimExpr(d) * c
        m = AffineMap(n, (expr,))
        strides = m.strides((1,))
        predicted = sum(s * p for s, p in zip(strides, point))
        assert m.evaluate(point)[0] == predicted
