"""Tests for the lowering passes: snitch emission, stream config,
loop flattening, FMA fusion."""

import pytest

from repro import kernels
from repro.api import compile_linalg
from repro.dialects import riscv, riscv_func
from repro.dialects.snitch_stream import StridePattern
from repro.ir import Builder, IRError
from repro.transforms.lower_snitch_stream import hardware_pattern
from repro.transforms.fuse_fmadd import FuseFMAddPass
from repro.dialects.builtin import ModuleOp
from repro.dialects.riscv import FloatRegisterType


class TestHardwarePattern:
    def test_contiguous_collapse(self):
        dims, repeat = hardware_pattern(
            StridePattern([5, 200], [1600, 8])
        )
        assert dims == [(1000, 8)]
        assert repeat == 1

    def test_trailing_zero_becomes_repeat(self):
        """The paper's dedicated repetition optimization."""
        dims, repeat = hardware_pattern(
            StridePattern([200, 5], [8, 0])
        )
        assert dims == [(200, 8)]
        assert repeat == 5

    def test_leading_zero_stride_kept(self):
        dims, repeat = hardware_pattern(
            StridePattern([4, 9], [0, 8])
        )
        assert dims == [(4, 0), (9, 8)]
        assert repeat == 1

    def test_too_many_dims_rejected(self):
        with pytest.raises(IRError):
            hardware_pattern(
                StridePattern([7, 3, 5, 7, 11], [1, 2, 4, 8, 16])
            )


class TestFuseFMAdd:
    def _module_with(self, ops):
        fn = riscv_func.FuncOp("f", [])
        fn.entry_block.add_ops(ops + [riscv_func.ReturnOp()])
        return ModuleOp([fn]), fn

    def _fregs(self, n):
        return [
            riscv.GetRegisterOp(FloatRegisterType(f"fa{i}"))
            for i in range(n)
        ]

    def test_mul_add_fused(self):
        regs = self._fregs(3)
        mul = riscv.FMulDOp(regs[0].result, regs[1].result)
        add = riscv.FAddDOp(regs[2].result, mul.rd)
        module, fn = self._module_with(regs + [mul, add])
        FuseFMAddPass().run(module)
        kinds = [op.name for op in fn.entry_block.ops]
        assert "rv.fmadd.d" in kinds
        assert "rv.fmul.d" not in kinds

    def test_multi_use_product_not_fused(self):
        regs = self._fregs(3)
        mul = riscv.FMulDOp(regs[0].result, regs[1].result)
        add = riscv.FAddDOp(mul.rd, regs[2].result)
        extra = riscv.FAddDOp(mul.rd, mul.rd)
        module, fn = self._module_with(regs + [mul, add, extra])
        FuseFMAddPass().run(module)
        kinds = [op.name for op in fn.entry_block.ops]
        assert "rv.fmul.d" in kinds

    def test_single_precision_fused(self):
        regs = self._fregs(3)
        mul = riscv.FMulSOp(regs[0].result, regs[1].result)
        add = riscv.FAddSOp(mul.rd, regs[2].result)
        module, fn = self._module_with(regs + [mul, add])
        FuseFMAddPass().run(module)
        assert any(
            op.name == "rv.fmadd.s" for op in fn.entry_block.ops
        )


class TestEmittedStructure:
    """Assembly-level checks of what each pipeline produces."""

    def test_ours_matmul_asm_shape(self):
        module, _ = kernels.matmul(1, 200, 5)
        asm = compile_linalg(module, pipeline="ours").asm
        assert "frep.o" in asm
        assert "csrsi ssrcfg, 1" in asm
        assert "csrci ssrcfg, 1" in asm
        assert "scfgwi" in asm
        assert asm.count("fmadd.d") == 5  # interleaved by 5
        assert "fld" not in asm and "fsd" not in asm

    def test_ours_sum_single_instruction_loop(self):
        module, _ = kernels.sum_kernel(8, 8)
        asm = compile_linalg(module, pipeline="ours").asm
        # The whole kernel collapses to one streamed fadd under FREP.
        assert "frep.o" in asm
        assert asm.count("fadd.d") == 1
        assert "blt" not in asm  # no software loop at all

    def test_baseline_has_no_snitch_extensions(self):
        module, _ = kernels.matmul(1, 8, 4)
        asm = compile_linalg(module, pipeline="table3-baseline").asm
        assert "frep.o" not in asm
        assert "scfgwi" not in asm
        assert "fld" in asm and "fsd" in asm

    def test_streams_stage_keeps_explicit_output(self):
        module, _ = kernels.matmul(1, 8, 4)
        asm = compile_linalg(module, pipeline="table3-streams").asm
        assert "scfgwi" in asm
        assert "frep.o" not in asm
        assert "fld" in asm and "fsd" in asm  # output RMW

    def test_fuse_stage_eliminates_memory_ops(self):
        module, _ = kernels.matmul(1, 8, 4)
        asm = compile_linalg(module, pipeline="table3-fuse").asm
        assert "fld" not in asm and "fsd" not in asm

    def test_loops_flattened_to_labels(self):
        module, _ = kernels.matmul(4, 8, 4)
        asm = compile_linalg(module, pipeline="clang").asm
        assert "blt" in asm
        assert ".for_body" in asm
        assert "rv_scf" not in asm

    def test_conv_streaming_region_inside_hoisted_loop(self):
        """Conv's 5-d pattern forces per-row stream re-arming: the
        stream configuration sits *inside* the hoisted row loop."""
        module, _ = kernels.conv3x3(8, 20)
        asm = compile_linalg(module, pipeline="ours").asm
        # Two loops: the hoisted row loop (textually first) and the
        # group loop; the config belongs to the hoisted loop's body.
        outer_body = asm.split(".for_body", 2)[1]
        assert "scfgwi" in outer_body

    def test_repeat_optimization_emitted(self):
        """MatMul's A operand is served via the repetition counter: the
        simulated data mover 0 ends up configured with repeat = 5."""
        import numpy as np
        from repro.snitch import SnitchMachine, TCDM, assemble

        module, spec = kernels.matmul(1, 200, 5)
        compiled = compile_linalg(module, pipeline="ours")
        memory = TCDM()
        args = spec.random_arguments(seed=0)
        pointers = {}
        for i, array in enumerate(args):
            base = memory.allocate(array.nbytes)
            memory.write_array(base, array)
            pointers[f"a{i}"] = base
        machine = SnitchMachine(assemble(compiled.asm), memory)
        machine.run(compiled.entry, int_args=pointers)
        assert machine.movers[0].repeat == 4  # serves each a[k] 5 times
        # and the stream pattern collapsed to a single hardware dim
        assert machine.movers[0].dims == 1


class TestSnapshots:
    def test_progressive_lowering_recorded(self):
        module, _ = kernels.matvec(5, 20)
        compiled = compile_linalg(module, pipeline="ours", snapshots=True)
        names = [name for name, _ in compiled.snapshots]
        assert names[0] == "input"
        assert "convert-linalg-to-memref-stream" in names
        assert "unroll-and-jam" in names
        assert "allocate-registers" in names
        # the memref_stream level is visible mid-pipeline
        mid = dict(compiled.snapshots)["scalar-replacement"]
        assert "memref_stream.generic" in mid
