"""Property-based end-to-end tests: random shapes and data through the
full compiler against the numpy oracles."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import api, kernels

#: Keep simulated workloads small enough for quick property runs.
SMALL = st.integers(1, 10)
EVEN_SMALL = st.integers(1, 6).map(lambda v: 2 * v)


def check(builder, sizes, seed):
    module, spec = builder(*sizes)
    compiled = api.compile_linalg(module, pipeline="ours")
    args = spec.random_arguments(seed=seed)
    result = api.run_kernel(compiled, args)
    expected = spec.reference(*args)
    for got, want in zip(result.arrays, expected):
        if want is not None:
            np.testing.assert_allclose(got, want, atol=1e-9, rtol=1e-11)
    return result


@settings(max_examples=20, deadline=None)
@given(n=SMALL, m=SMALL, seed=st.integers(0, 2**16))
def test_sum_any_shape(n, m, seed):
    check(kernels.sum_kernel, (n, m), seed)


@settings(max_examples=20, deadline=None)
@given(n=SMALL, m=SMALL, seed=st.integers(0, 2**16))
def test_relu_any_shape(n, m, seed):
    check(kernels.relu, (n, m), seed)


@settings(max_examples=20, deadline=None)
@given(n=SMALL, m=SMALL, seed=st.integers(0, 2**16))
def test_fill_any_shape(n, m, seed):
    check(kernels.fill, (n, m), seed)


@settings(max_examples=20, deadline=None)
@given(m=st.integers(1, 4), k=SMALL, n=SMALL, seed=st.integers(0, 2**16))
def test_matmul_any_shape(m, k, n, seed):
    check(kernels.matmul, (m, k, n), seed)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(1, 6), m=st.integers(1, 6), seed=st.integers(0, 2**16))
def test_conv_any_shape(n, m, seed):
    check(kernels.conv3x3, (n, m), seed)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(1, 6), m=st.integers(1, 6), seed=st.integers(0, 2**16))
def test_pools_any_shape(n, m, seed):
    check(kernels.max_pool3x3, (n, m), seed)
    check(kernels.sum_pool3x3, (n, m), seed)


@settings(max_examples=10, deadline=None)
@given(
    m=st.integers(1, 3),
    k=st.integers(1, 8),
    n=st.integers(1, 8),
    seed=st.integers(0, 2**16),
)
def test_matmul_baseline_agrees_with_ours(m, k, n, seed):
    """Differential testing: two independent lowerings, same numbers."""
    module_a, spec = kernels.matmul(m, k, n)
    module_b, _ = kernels.matmul(m, k, n)
    args = spec.random_arguments(seed=seed)
    ours = api.run_kernel(
        api.compile_linalg(module_a, "ours"), args
    ).arrays[2]
    base = api.run_kernel(
        api.compile_linalg(module_b, "table3-baseline"), args
    ).arrays[2]
    np.testing.assert_allclose(ours, base, atol=1e-9)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(1, 8), seed=st.integers(0, 2**16))
def test_matvec_matches_matmul(n, seed):
    """matvec(rows, cols) and matmul(rows, cols, 1)-style consistency."""
    module, spec = kernels.matvec(n, 12)
    args = spec.random_arguments(seed=seed)
    result = api.run_kernel(api.compile_linalg(module, "ours"), args)
    np.testing.assert_allclose(
        result.arrays[2], args[1] @ args[0], atol=1e-9
    )
