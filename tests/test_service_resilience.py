"""Resilient service lifecycle tests: request deadlines, admission
backpressure, client retry + circuit breaker, graceful drain, the
crash-safe request journal, and service-level chaos (the
``REPRO_SERVICE_FAULTS`` injection layer).

The drills at the bottom are the headline guarantees: a kill -9'd
server restarts cleanly (stale socket cleared, journal swept, zero
corrupt store entries) and every client call under any injection plan
terminates with a valid result or a taxonomy fault — never a hang,
never a raw ``EOFError``.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import (
    EXIT_CRASH,
    EXIT_OK,
    ArtifactStore,
    CircuitOpenError,
    CompileServer,
    RequestJournal,
    ServiceClient,
    ServiceError,
    ServiceRequest,
    ServiceUnavailable,
    serve_forever,
)
from repro.service.client import _clear_stale_socket
from repro.service.server import request_key
from repro.tune.faults import (
    FAULT_KINDS,
    SERVICE_ACTIONS,
    SERVICE_FAULTS_ENV,
    FaultInjector,
    Injection,
)

#: A tiny request that compiles in milliseconds.
TINY = ServiceRequest("compile", "sum", (2, 4))
TINY2 = ServiceRequest("compile", "fill", (2, 4))
TINY3 = ServiceRequest("compile", "relu", (2, 4))


def _spawn_server(tmp_path, injector=None, **kwargs):
    """serve_forever on a thread; returns (socket_path, thread,
    exit_code_box)."""
    socket_path = tmp_path / "service.sock"
    ready = threading.Event()
    code_box = []

    def run():
        code_box.append(
            serve_forever(
                tmp_path / "store",
                socket_path,
                ready=lambda addr: ready.set(),
                injector=injector,
                **kwargs,
            )
        )

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(30)
    return socket_path, thread, code_box


def _stop(client, thread):
    try:
        client.shutdown()
    except ServiceError:
        pass
    thread.join(timeout=30)
    assert not thread.is_alive()


# -- client timeouts and transport faults ---------------------------------------


class TestClientTimeouts:
    def test_wedged_server_surfaces_timeout_fault(self, tmp_path):
        # A listener that accepts into its backlog but never replies.
        wedge_path = tmp_path / "wedged.sock"
        wedge = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        wedge.bind(str(wedge_path))
        wedge.listen(1)
        try:
            client = ServiceClient(
                wedge_path, call_timeout=0.2, retries=0
            )
            with pytest.raises(ServiceUnavailable) as excinfo:
                client.submit(TINY)
            assert excinfo.value.fault.kind == "timeout"
            assert excinfo.value.fault.retryable
        finally:
            wedge.close()

    def test_connect_failure_is_transport_fault(self, tmp_path):
        client = ServiceClient(
            tmp_path / "nobody-home.sock", retries=0
        )
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.submit(TINY)
        assert excinfo.value.fault.kind == "transport"
        assert not client.ping()

    def test_transport_retries_are_bounded_and_counted(self, tmp_path):
        client = ServiceClient(
            tmp_path / "gone.sock", retries=2, backoff=0.001
        )
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.stats()
        assert excinfo.value.fault.attempts == 3  # 1 + 2 retries


# -- circuit breaker ------------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_fails_fast_and_recovers(self, tmp_path):
        socket_path = tmp_path / "service.sock"
        client = ServiceClient(
            socket_path,
            retries=0,
            backoff=0.001,
            breaker_threshold=2,
            breaker_cooldown=0.2,
        )
        # Two consecutive transport failures open the circuit.
        for _ in range(2):
            with pytest.raises(ServiceUnavailable):
                client.submit(TINY)
        with pytest.raises(CircuitOpenError):
            client.submit(TINY)
        # Half-open after the cooldown: the probe ping fails against
        # a still-dead server, so the circuit re-opens.
        time.sleep(0.25)
        with pytest.raises(CircuitOpenError):
            client.submit(TINY)
        # Bring a real server up on the same path; after the
        # cooldown the probe succeeds and the call goes through.
        _, thread, _ = _spawn_server(tmp_path)
        time.sleep(0.25)
        result = client.submit(TINY)
        assert result["fault"] is None
        _stop(client, thread)

    def test_success_resets_failure_count(self, tmp_path):
        socket_path, thread, _ = _spawn_server(tmp_path)
        client = ServiceClient(
            socket_path, retries=0, breaker_threshold=2
        )
        client._record_outcome(False)
        assert client.ping()  # success clears the streak
        assert client._consecutive_failures == 0
        _stop(client, thread)


# -- admission control (backpressure) -------------------------------------------


class TestAdmissionControl:
    def test_overload_refusal_is_structured(self, tmp_path):
        with CompileServer(
            ArtifactStore(tmp_path), max_inflight=0
        ) as server:
            result = server.submit(TINY)
            assert result.source == "rejected"
            assert result.fault.kind == "overload"
            assert result.fault.retryable
            assert result.fault.stage == "admission"
            stats = server.stats()
            assert stats["counters"]["rejected_overload"] == 1
            assert stats["lifecycle"]["max_inflight"] == 0

    def test_batch_refused_as_a_unit(self, tmp_path):
        with CompileServer(
            ArtifactStore(tmp_path), max_inflight=1
        ) as server:
            results = server.batch([TINY, TINY2])
            assert [r.source for r in results] == ["rejected"] * 2
            assert all(r.fault.kind == "overload" for r in results)

    def test_draining_refusal_is_cancelled(self, tmp_path):
        with CompileServer(ArtifactStore(tmp_path)) as server:
            server.begin_drain()
            result = server.submit(TINY)
            assert result.source == "rejected"
            assert result.fault.kind == "cancelled"
            assert result.fault.retryable
            assert server.stats()["counters"]["rejected_draining"] == 1

    def test_two_clients_race_one_bounded_server(self, tmp_path):
        """Satellite drill: two clients hammer a max_inflight=1
        server; retries absorb the overload refusals and every
        request eventually resolves."""
        socket_path, thread, _ = _spawn_server(
            tmp_path, max_inflight=1
        )
        requests = [TINY, TINY2, TINY3]
        outcomes: dict[str, list] = {}

        def hammer(name):
            client = ServiceClient(
                socket_path, retries=8, backoff=0.01, jitter=0.5
            )
            outcomes[name] = [
                client.submit(request) for request in requests
            ]

        threads = [
            threading.Thread(target=hammer, args=(name,))
            for name in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
            assert not t.is_alive()
        for name in ("a", "b"):
            assert all(r["fault"] is None for r in outcomes[name])
        client = ServiceClient(socket_path)
        stats = client.stats()
        assert stats["lifecycle"]["max_inflight"] == 1
        # Every request was either admitted or refused — admissions
        # never exceeded the high-water mark (no counter for that,
        # but zero unclassified failures above proves no queueing
        # pathology), and refusals were structured overloads.
        assert stats["counters"]["requests"] >= 6
        _stop(client, thread)


# -- request deadlines ----------------------------------------------------------


class TestRequestDeadlines:
    def test_expired_deadline_faults_but_artifact_persists(
        self, tmp_path
    ):
        with CompileServer(ArtifactStore(tmp_path)) as server:
            result = server.submit(TINY, deadline=0.0)
            assert result.source == "failed"
            assert result.fault.kind == "timeout"
            assert result.fault.stage == "request"
            assert (
                server.stats()["counters"]["deadline_expired"] == 1
            )
            # The work itself finished and was persisted — the retry
            # is a cheap store hit.
            retry = server.submit(TINY)
            assert retry.source == "store"
            assert retry.fault is None

    def test_server_default_deadline_applies(self, tmp_path):
        with CompileServer(
            ArtifactStore(tmp_path), request_deadline=0.0
        ) as server:
            assert server.submit(TINY).fault.kind == "timeout"
            assert (
                server.stats()["lifecycle"]["request_deadline"] == 0.0
            )

    def test_deadline_rides_the_wire(self, tmp_path):
        socket_path, thread, _ = _spawn_server(tmp_path)
        client = ServiceClient(socket_path, retries=0)
        result = client.submit(TINY, deadline=60.0)
        assert result["fault"] is None
        batch = client.batch([TINY, TINY2], deadline=60.0)
        assert all(r["fault"] is None for r in batch)
        _stop(client, thread)


# -- graceful drain and exit codes ----------------------------------------------


class TestDrain:
    def test_shutdown_op_drains_and_exits_zero(self, tmp_path):
        socket_path, thread, code_box = _spawn_server(tmp_path)
        client = ServiceClient(socket_path)
        assert client.submit(TINY)["fault"] is None
        client.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert code_box == [EXIT_OK]
        assert not socket_path.exists()

    def test_sigterm_drains_and_exits_143(self, tmp_path):
        """Satellite drill: a real CLI server process, SIGTERM'd,
        drains and exits with the documented code."""
        socket_path = tmp_path / "cli.sock"
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.tools.kernel_service",
                "serve",
                "--store",
                str(tmp_path / "store"),
                "--socket",
                str(socket_path),
                "--drain-timeout",
                "5",
            ],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=Path(__file__).resolve().parent.parent,
        )
        try:
            client = ServiceClient(
                socket_path, retries=20, backoff=0.1
            )
            assert client.stats()["counters"]["requests"] == 0
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 143
            assert not socket_path.exists()
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

    def test_stale_socket_cleared_live_socket_refused(self, tmp_path):
        stale = tmp_path / "stale.sock"
        stale.touch()  # plain file: connect fails -> treated stale
        _clear_stale_socket(stale)
        assert not stale.exists()
        socket_path, thread, _ = _spawn_server(tmp_path)
        with pytest.raises(ServiceError, match="live server"):
            _clear_stale_socket(socket_path)
        _stop(ServiceClient(socket_path), thread)


# -- the request journal --------------------------------------------------------


class TestRequestJournal:
    def test_begin_finish_lifecycle(self, tmp_path):
        journal = RequestJournal(tmp_path / "journal.json")
        entry_id = journal.begin("kernel", "k" * 64, "compile sum")
        pending = journal.pending()
        assert len(pending) == 1
        assert pending[0]["label"] == "compile sum"
        assert pending[0]["pid"] == os.getpid()
        journal.finish(entry_id)
        assert journal.pending() == []

    def test_sweep_returns_only_dead_writers(self, tmp_path):
        journal = RequestJournal(tmp_path / "journal.json")
        journal.begin("kernel", "a" * 64, "live entry")
        # Forge a second entry whose writer pid is dead.
        data = json.loads(journal.path.read_text())
        dead = subprocess.Popen(["true"])
        dead.wait()
        data["entries"]["kernel/" + "b" * 64] = {
            "kind": "kernel",
            "key": "b" * 64,
            "label": "interrupted entry",
            "pid": dead.pid,
            "started": 0.0,
        }
        journal.path.write_text(json.dumps(data))
        swept = journal.sweep()
        assert [r["label"] for r in swept] == ["interrupted entry"]
        # The live entry survives the sweep.
        assert [r["label"] for r in journal.pending()] == [
            "live entry"
        ]

    def test_corrupt_journal_degrades_to_empty(self, tmp_path):
        journal = RequestJournal(tmp_path / "journal.json")
        journal.path.write_text("{not json")
        assert journal.pending() == []
        assert journal.sweep() == []

    def test_server_reports_interrupted_on_restart(self, tmp_path):
        journal = RequestJournal(tmp_path / "journal.json")
        dead = subprocess.Popen(["true"])
        dead.wait()
        journal.path.write_text(
            json.dumps(
                {
                    "schema": RequestJournal.SCHEMA,
                    "entries": {
                        "kernel/" + "c" * 64: {
                            "kind": "kernel",
                            "key": "c" * 64,
                            "label": "lost work",
                            "pid": dead.pid,
                            "started": 0.0,
                        }
                    },
                }
            )
        )
        with CompileServer(
            ArtifactStore(tmp_path / "store"), journal=journal
        ) as server:
            assert [r["label"] for r in server.interrupted] == [
                "lost work"
            ]
            lifecycle = server.stats()["lifecycle"]
            assert (
                lifecycle["interrupted_on_restart"][0]["label"]
                == "lost work"
            )
        assert journal.pending() == []  # swept clean

    def test_journalled_compute_leaves_no_residue(self, tmp_path):
        journal = RequestJournal(tmp_path / "journal.json")
        with CompileServer(
            ArtifactStore(tmp_path / "store"), journal=journal
        ) as server:
            assert server.submit(TINY).fault is None
            assert server.batch([TINY2, TINY3]) is not None
        assert journal.pending() == []


# -- service-scoped fault injection ---------------------------------------------


class TestServiceInjection:
    def test_env_grammar_parses_service_actions(self, monkeypatch):
        monkeypatch.setenv(
            SERVICE_FAULTS_ENV,
            "reject-admission@0;delay-response@1=0.05;"
            "drop-connection@2;crash-server@3",
        )
        injector = FaultInjector.from_env(SERVICE_FAULTS_ENV)
        assert injector.for_request(0).action == "reject-admission"
        assert injector.for_request(1).value == 0.05
        assert injector.for_request(3).action == "crash-server"
        # Service actions never fire on the tuner's attempt axis.
        assert injector.for_attempt(0, 1) is None

    def test_reject_admission_then_client_retry_succeeds(
        self, tmp_path
    ):
        injector = FaultInjector([Injection(0, "reject-admission")])
        socket_path, thread, _ = _spawn_server(
            tmp_path, injector=injector
        )
        client = ServiceClient(socket_path, retries=2, backoff=0.01)
        result = client.submit(TINY)  # retried past the injection
        assert result["fault"] is None
        stats = client.stats()
        assert stats["counters"]["rejected_overload"] == 1
        assert stats["fault_kinds"].get("overload") == 1
        _stop(client, thread)

    def test_drop_connection_then_client_retry_succeeds(
        self, tmp_path
    ):
        injector = FaultInjector([Injection(0, "drop-connection")])
        socket_path, thread, _ = _spawn_server(
            tmp_path, injector=injector
        )
        client = ServiceClient(socket_path, retries=2, backoff=0.01)
        assert client.submit(TINY)["fault"] is None
        _stop(client, thread)

    def test_delay_response_drives_call_timeout(self, tmp_path):
        injector = FaultInjector(
            [Injection(0, "delay-response", value=1.0)]
        )
        socket_path, thread, _ = _spawn_server(
            tmp_path, injector=injector
        )
        client = ServiceClient(
            socket_path, call_timeout=0.2, retries=2, backoff=0.01
        )
        assert client.submit(TINY)["fault"] is None  # retry won
        _stop(client, thread)

    def test_crash_server_exits_70_and_client_classifies(
        self, tmp_path
    ):
        injector = FaultInjector([Injection(0, "crash-server")])
        socket_path, thread, code_box = _spawn_server(
            tmp_path, injector=injector
        )
        client = ServiceClient(socket_path, retries=1, backoff=0.01)
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.submit(TINY)
        assert excinfo.value.fault.kind in ("transport", "timeout")
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert code_box == [EXIT_CRASH]


# -- the kill -9 drill ----------------------------------------------------------


class TestKillDrill:
    def test_kill9_restart_reconnect_and_warm_hits(self, tmp_path):
        """The headline robustness drill: SIGKILL a real server
        mid-batch, restart it on the same socket + store, and prove
        (a) the client reconnects and resubmits, (b) completed keys
        are 100% warm store hits, (c) the store has zero corrupt
        entries, (d) the restarted server reports the interrupted
        work its predecessor journalled."""
        socket_path = tmp_path / "drill.sock"
        store_dir = tmp_path / "store"
        env = {**os.environ, "PYTHONPATH": "src"}
        cwd = Path(__file__).resolve().parent.parent
        argv = [
            sys.executable,
            "-m",
            "repro.tools.kernel_service",
            "serve",
            "--store",
            str(store_dir),
            "--socket",
            str(socket_path),
        ]
        process = subprocess.Popen(argv, env=env, cwd=cwd)
        restarted = None
        try:
            client = ServiceClient(
                socket_path, retries=20, backoff=0.1
            )
            # Phase 1: complete one request so its artifact is on
            # disk, then start a batch on a background thread and
            # SIGKILL the server the moment the journal shows
            # accepted-but-unfinished work.
            assert client.submit(TINY)["fault"] is None
            journal = RequestJournal(store_dir / "journal.json")
            batch_error = []

            def doomed_batch():
                doomed = ServiceClient(
                    socket_path, retries=1, backoff=0.01
                )
                try:
                    doomed.batch([TINY, TINY2, TINY3])
                except ServiceUnavailable as error:
                    batch_error.append(error)

            batcher = threading.Thread(target=doomed_batch)
            batcher.start()
            deadline = time.monotonic() + 30
            while (
                not journal.pending()
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            assert journal.pending(), "batch never reached the pool"
            process.kill()  # SIGKILL: no drain, no journal cleanup
            process.wait(timeout=30)
            batcher.join(timeout=60)
            assert not batcher.is_alive()
            # The doomed client saw a classified transport failure,
            # not a raw EOFError/BrokenPipeError.
            assert len(batch_error) == 1
            assert batch_error[0].fault.kind in (
                "transport",
                "timeout",
            )
            # Phase 2: restart on the same socket + store.  The
            # stale socket file is cleared, the journal is swept.
            restarted = subprocess.Popen(argv, env=env, cwd=cwd)
            client = ServiceClient(
                socket_path, retries=20, backoff=0.1
            )
            stats = client.stats()
            interrupted = stats["lifecycle"][
                "interrupted_on_restart"
            ]
            assert interrupted, "journal sweep reported nothing"
            # Phase 3: resubmit everything.  Completed keys are warm
            # hits; nothing is corrupt.
            results = client.batch([TINY, TINY2, TINY3])
            assert all(r["fault"] is None for r in results)
            by_key = {r["key"]: r for r in results}
            _, tiny_key = request_key(TINY)
            assert by_key[tiny_key]["source"] == "store"
            report = ArtifactStore(store_dir).verify_all()
            assert report["corrupt"] == 0
            assert report["ok"] >= 3
            client.shutdown()
            assert restarted.wait(timeout=30) == 0
        finally:
            for p in (process, restarted):
                if p is not None and p.poll() is None:
                    p.kill()
                    p.wait(timeout=30)


# -- the chaos property ---------------------------------------------------------


@st.composite
def injection_plans(draw):
    """A small deterministic plan over the service-scoped actions."""
    size = draw(st.integers(min_value=0, max_value=3))
    plan = []
    for slot in range(size):
        action = draw(st.sampled_from(SERVICE_ACTIONS))
        value = (
            draw(
                st.floats(
                    min_value=0.01,
                    max_value=0.05,
                    allow_nan=False,
                )
            )
            if action == "delay-response"
            else 0.0
        )
        plan.append(Injection(index=slot, action=action, value=value))
    return FaultInjector(plan)


@pytest.mark.chaos
class TestServiceChaosProperty:
    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(injector=injection_plans())
    def test_every_call_terminates_classified(self, injector):
        """Under ANY plan of service injections, every client call
        terminates (bounded time) with a valid result dict or a
        taxonomy fault — never a hang, never an unclassified
        exception."""
        with tempfile.TemporaryDirectory() as tmp:
            tmp_path = Path(tmp)
            socket_path, thread, code_box = _spawn_server(
                tmp_path, injector=injector, drain_timeout=5.0
            )
            client = ServiceClient(
                socket_path,
                connect_timeout=2.0,
                call_timeout=30.0,
                retries=1,
                backoff=0.01,
                breaker_threshold=3,
                breaker_cooldown=0.05,
            )
            calls = [
                lambda: client.submit(TINY),
                lambda: client.batch([TINY, TINY2]),
                lambda: client.submit(TINY3),
            ]
            for call in calls:
                try:
                    outcome = call()
                except ServiceUnavailable as error:
                    # Includes CircuitOpenError; always classified.
                    assert error.fault.kind in FAULT_KINDS
                    continue
                results = (
                    outcome
                    if isinstance(outcome, list)
                    else [outcome]
                )
                for result in results:
                    assert isinstance(result, dict)
                    if result["fault"] is None:
                        assert result["payload"] is not None
                    else:
                        assert (
                            result["fault"]["kind"] in FAULT_KINDS
                        )
            try:
                client.shutdown()
            except ServiceError:
                pass
            thread.join(timeout=60)
            assert not thread.is_alive(), "server loop hung"
            assert code_box and code_box[0] in (
                EXIT_OK,
                EXIT_CRASH,
            )
