"""Tests for the Compiler facade, named-pipeline specs and goldens.

The golden test hand-builds the legacy hardcoded pass lists (the
if/elif chain the registry redesign replaced) and checks that every
named pipeline still compiles the paper's Table 3 kernel to
byte-identical assembly through the new spec-driven path.
"""

import numpy as np
import pytest

from repro import api, kernels
from repro.compiler import CompiledKernel, Compiler
from repro.ir.pass_manager import (
    PassInstrumentation,
    PassManager,
    PrintIRInstrumentation,
)
from repro.ir.pipeline_spec import (
    PipelineSpecError,
    parse_pipeline_spec,
    print_pipeline_spec,
)
from repro.transforms.allocate_registers_pass import AllocateRegistersPass
from repro.transforms.canonicalize import (
    CanonicalizePass,
    EliminateIdentityMovesPass,
)
from repro.transforms.convert_linalg_to_memref_stream import (
    ConvertLinalgToMemrefStreamPass,
)
from repro.transforms.convert_to_riscv import ConvertToRISCVPass
from repro.transforms.dce import DeadCodeEliminationPass
from repro.transforms.fuse_fill import FuseFillPass
from repro.transforms.fuse_fmadd import FuseFMAddPass
from repro.transforms.lower_generic_to_loops import LowerGenericToLoopsPass
from repro.transforms.lower_generic_to_pointer_loops import (
    LowerGenericToPointerLoopsPass,
)
from repro.transforms.lower_riscv_scf import LowerRiscvScfPass
from repro.transforms.lower_snitch_stream import LowerSnitchStreamPass
from repro.transforms.lower_to_snitch import LowerToSnitchPass
from repro.transforms.pipelines import (
    NAMED_PIPELINES,
    PIPELINE_NAMES,
    build_pipeline,
    expand_pipeline,
)
from repro.transforms.scalar_replacement import ScalarReplacementPass
from repro.transforms.unroll_and_jam import UnrollAndJamPass
from repro.transforms.verify_streams import VerifyStreamsPass


def _snitch_backend():
    return [
        VerifyStreamsPass(),
        FuseFMAddPass(),
        LowerSnitchStreamPass(),
        CanonicalizePass(),
        DeadCodeEliminationPass(),
        AllocateRegistersPass(),
        LowerRiscvScfPass(),
        EliminateIdentityMovesPass(),
    ]


def _loops_backend():
    return [
        ConvertToRISCVPass(),
        FuseFMAddPass(),
        DeadCodeEliminationPass(),
        AllocateRegistersPass(),
        LowerRiscvScfPass(),
        EliminateIdentityMovesPass(),
    ]


def _pointer_backend():
    return [
        FuseFMAddPass(),
        DeadCodeEliminationPass(),
        AllocateRegistersPass(),
        LowerRiscvScfPass(),
        EliminateIdentityMovesPass(),
    ]


def legacy_passes(name):
    """The pre-registry hardcoded pipelines, verbatim."""
    front = [ConvertLinalgToMemrefStreamPass()]
    if name in ("ours", "table3-unroll"):
        return front + [
            FuseFillPass(),
            ScalarReplacementPass(),
            UnrollAndJamPass(None),
            LowerToSnitchPass(use_frep=True),
            *_snitch_backend(),
        ]
    if name == "table3-baseline":
        return front + [LowerGenericToLoopsPass(), *_loops_backend()]
    if name == "clang":
        return front + [
            LowerGenericToPointerLoopsPass(),
            *_pointer_backend(),
        ]
    if name == "table3-streams":
        return front + [
            LowerToSnitchPass(use_frep=False),
            *_snitch_backend(),
        ]
    if name == "table3-scalar":
        return front + [
            ScalarReplacementPass(),
            LowerToSnitchPass(use_frep=False),
            *_snitch_backend(),
        ]
    if name == "table3-frep":
        return front + [
            ScalarReplacementPass(),
            LowerToSnitchPass(use_frep=True),
            *_snitch_backend(),
        ]
    if name == "table3-fuse":
        return front + [
            FuseFillPass(),
            ScalarReplacementPass(),
            LowerToSnitchPass(use_frep=True),
            *_snitch_backend(),
        ]
    if name == "mlir":
        return front + [
            ScalarReplacementPass(),
            LowerGenericToPointerLoopsPass(),
            *_pointer_backend(),
        ]
    raise AssertionError(name)


class TestGoldenEquivalence:
    @pytest.mark.parametrize("name", PIPELINE_NAMES)
    def test_named_pipeline_matches_legacy_asm(self, name):
        """Acceptance: byte-identical matmul(1, 200, 5) assembly."""
        module, _ = kernels.matmul(1, 200, 5)
        legacy = PassManager(legacy_passes(name))
        legacy.run(module)
        from repro.backend.asm_emitter import emit_module

        legacy_asm = emit_module(module)

        module, _ = kernels.matmul(1, 200, 5)
        new_asm = Compiler(name).compile(module).asm
        assert new_asm == legacy_asm

    def test_lowlevel_pipeline_matches_legacy_tail(self):
        """compile_lowlevel's inline pass list became "lowlevel"."""
        from repro.kernels import lowlevel

        module, spec = lowlevel.lowlevel_sum_f32(2, 4)
        legacy = PassManager(
            [
                LowerSnitchStreamPass(),
                CanonicalizePass(),
                DeadCodeEliminationPass(),
                AllocateRegistersPass(),
                LowerRiscvScfPass(),
                EliminateIdentityMovesPass(),
            ]
        )
        legacy.run(module)
        from repro.backend.asm_emitter import emit_module

        legacy_asm = emit_module(module)

        module, spec = lowlevel.lowlevel_sum_f32(2, 4)
        compiled = api.compile_lowlevel(module, spec.name)
        assert compiled.asm == legacy_asm


class TestNamedPipelineSpecs:
    @pytest.mark.parametrize("name", sorted(NAMED_PIPELINES))
    def test_spec_round_trips(self, name):
        """Acceptance: parse(pm.pipeline_spec) round-trips for every
        named pipeline (this is the tier-1 registry regression gate)."""
        manager = build_pipeline(name)
        specs = parse_pipeline_spec(manager.pipeline_spec)
        assert print_pipeline_spec(specs) == manager.pipeline_spec
        rebuilt = build_pipeline(manager.pipeline_spec)
        assert rebuilt.pipeline_spec == manager.pipeline_spec

    @pytest.mark.parametrize("name", sorted(NAMED_PIPELINES))
    def test_declared_spec_is_canonical(self, name):
        manager = build_pipeline(name)
        assert manager.pipeline_spec == NAMED_PIPELINES[name]

    def test_expand_pipeline_passthrough(self):
        assert expand_pipeline("ours") == NAMED_PIPELINES["ours"]
        assert expand_pipeline("dce,canonicalize") == "dce,canonicalize"

    def test_expand_pipeline_unknown_name(self):
        with pytest.raises(PipelineSpecError, match="unknown pipeline"):
            expand_pipeline("llvm")

    def test_unroll_factor_override(self):
        manager = build_pipeline("ours", unroll_factor=2)
        assert "unroll-and-jam{factor=2}" in manager.pipeline_spec


class TestCompilerFacade:
    def test_default_pipeline_is_ours(self):
        module, _ = kernels.sum_kernel(4, 4)
        compiled = Compiler().compile(module)
        assert isinstance(compiled, CompiledKernel)
        assert compiled.entry == "sum"
        assert "frep.o" in compiled.asm

    def test_accepts_raw_spec_string(self):
        module, _ = kernels.sum_kernel(4, 4)
        spec = NAMED_PIPELINES["table3-streams"]
        compiled = Compiler(spec).compile(module)
        assert ".globl sum" in compiled.asm
        assert "frep.o" not in compiled.asm  # use-frep=false honoured

    def test_accepts_pass_manager(self):
        module, _ = kernels.sum_kernel(4, 4)
        manager = build_pipeline("ours")
        compiled = Compiler(manager).compile(module)
        assert compiled.entry == "sum"

    def test_accepts_pass_sequence(self):
        module, _ = kernels.sum_kernel(4, 4)
        passes = [
            ConvertLinalgToMemrefStreamPass(),
            LowerToSnitchPass(),
            *_snitch_backend(),
        ]
        compiled = Compiler(passes).compile(module)
        assert compiled.entry == "sum"

    def test_bad_pipeline_fails_at_construction(self):
        with pytest.raises(PipelineSpecError):
            Compiler("not-a-pipeline")
        with pytest.raises(PipelineSpecError):
            Compiler("dce{oops=1}")

    def test_pipeline_spec_property(self):
        assert Compiler("ours").pipeline_spec == NAMED_PIPELINES["ours"]

    def test_unroll_factor(self):
        module, _ = kernels.matmul(1, 40, 8)
        compiled = Compiler("ours", unroll_factor=2).compile(module)
        assert compiled.asm.count("fmadd.d") == 2

    def test_explicit_entry(self):
        from repro.kernels import lowlevel

        module, spec = lowlevel.lowlevel_sum_f32(2, 4)
        compiled = Compiler("lowlevel", verify_input=False).compile(
            module, entry=spec.name
        )
        assert compiled.entry == spec.name

    def test_snapshots_and_timings_recorded(self):
        module, _ = kernels.sum_kernel(4, 4)
        compiled = Compiler("ours", snapshots=True).compile(module)
        assert compiled.snapshots[0][0] == "input"
        names = [name for name, _ in compiled.pass_timings]
        assert names == [
            spec.name
            for spec in parse_pipeline_spec(NAMED_PIPELINES["ours"])
        ]
        assert all(seconds >= 0 for _, seconds in compiled.pass_timings)

    def test_timings_fresh_per_compile(self):
        compiler = Compiler("ours")
        for _ in range(2):
            module, _ = kernels.sum_kernel(4, 4)
            compiled = compiler.compile(module)
            assert len(compiled.pass_timings) == len(
                parse_pipeline_spec(NAMED_PIPELINES["ours"])
            )

    def test_instrumentation_hooks_fire_in_order(self):
        events = []

        class Recorder(PassInstrumentation):
            def before_pass(self, pass_, module):
                events.append(("before", pass_.name))

            def after_pass(self, pass_, module, elapsed):
                events.append(("after", pass_.name))
                assert elapsed >= 0

        module, _ = kernels.sum_kernel(4, 4)
        Compiler("ours", instrument=Recorder()).compile(module)
        expected_names = [
            spec.name
            for spec in parse_pipeline_spec(NAMED_PIPELINES["ours"])
        ]
        assert events == [
            (phase, name)
            for name in expected_names
            for phase in ("before", "after")
        ]

    def test_print_ir_instrumentation(self, capsys):
        module, _ = kernels.sum_kernel(4, 4)
        Compiler(
            "ours", instrument=PrintIRInstrumentation()
        ).compile(module)
        out = capsys.readouterr().out
        assert "// -----// IR after dce //----- //" in out

    def test_verify_each_off_still_compiles(self):
        module, _ = kernels.sum_kernel(4, 4)
        compiled = Compiler("ours", verify_each=False).compile(module)
        assert compiled.entry == "sum"

    def test_compiled_kernel_runs(self):
        module, spec = kernels.sum_kernel(4, 4)
        compiled = Compiler(
            NAMED_PIPELINES["table3-frep"]
        ).compile(module)
        arguments = spec.random_arguments(seed=3)
        result = api.run_kernel(compiled, arguments)
        expected = spec.reference(*arguments)
        for got, want in zip(result.arrays, expected):
            if want is not None:
                np.testing.assert_allclose(got, want, atol=1e-9)
