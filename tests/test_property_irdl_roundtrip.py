"""Property test: every registered op round-trips through text.

For each op in the registry, an instance is synthesized *from its
declarative spec* (operand/result types drawn to satisfy the declared
constraints, attributes drawn per their declared class), printed in the
generic syntax, reparsed, and checked for structural equality and clean
verification — the IRDL-layer equivalent of the paper toolchains
interoperating "via the common text IR format".

Ops whose verification demands region structure the spec cannot express
(loop bodies ending in the right yield, ABI-typed entry blocks, ...) are
built through their typed constructors instead; the coverage test at the
bottom guarantees no registered op slips through either path.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dialects import (
    arith,
    builtin,
    func,
    linalg,
    memref,
    memref_stream,
    riscv_func,
    riscv_scf,
    riscv_snitch,
    scf,
    snitch_stream,
)
from repro.dialects.riscv import FloatRegisterType, IntRegisterType
from repro.dialects.stream import ReadableStreamType, WritableStreamType
from repro.ir import op_registry
from repro.ir.affine_map import AffineMap
from repro.ir.attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseIntAttr,
    FunctionType,
    IntAttr,
    MemRefType,
    StringAttr,
    f32,
    f64,
    i32,
    index,
)
from repro.ir.core import Block, Operation, Region
from repro.ir.irdl import ElementOf, SameAs
from repro.ir.parser import parse_op
from repro.ir.printer import print_op
from repro.ir.traits import SameOperandsAndResultType

#: The type menu operand/result draws pick from (filtered by the
#: declared constraint of each field).
CANDIDATE_TYPES = (
    f64,
    f32,
    i32,
    index,
    IntRegisterType(),
    IntRegisterType("t0"),
    FloatRegisterType(),
    FloatRegisterType("ft1"),
    MemRefType(f64, (4,)),
    MemRefType(f64, (2, 3)),
    ReadableStreamType(f64),
    WritableStreamType(f64),
    ReadableStreamType(FloatRegisterType("ft0")),
    WritableStreamType(FloatRegisterType("ft2")),
)

IDENTIFIERS = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)


class _HarnessOp(Operation):
    """Carrier op: its single block defines the tested op's operands."""

    name = "testharness.carrier"
    __slots__ = ()


def draw_type(data, constraint):
    """A type from the menu satisfying ``constraint``."""
    matching = [
        t for t in CANDIDATE_TYPES if constraint.satisfied_by(t)
    ]
    assert matching, f"no candidate type satisfies {constraint!r}"
    return data.draw(st.sampled_from(matching))


def draw_attribute(data, definition) -> Attribute:
    """An attribute matching one declared attr field."""
    base = definition.attr_class
    if base is IntAttr:
        return IntAttr(data.draw(st.integers(-100, 100)))
    if base is StringAttr:
        return StringAttr(data.draw(IDENTIFIERS))
    if base is BoolAttr:
        return BoolAttr(data.draw(st.booleans()))
    if base is DenseIntAttr:
        return DenseIntAttr(
            data.draw(st.lists(st.integers(-8, 8), max_size=3))
        )
    if base is ArrayAttr:
        # String elements: an all-integer array would reparse as a
        # DenseIntAttr, so draw non-numeric payloads.
        return ArrayAttr(
            [
                StringAttr(s)
                for s in data.draw(
                    st.lists(IDENTIFIERS, min_size=1, max_size=3)
                )
            ]
        )
    if base is FunctionType:
        return FunctionType([f64], [])
    return IntAttr(data.draw(st.integers(0, 9)))


def build_from_spec(data, op_class) -> tuple[Block, Operation]:
    """Synthesize one op purely from its declarative spec.

    Operands become arguments of a fresh carrier block (so the printed
    form defines every referenced value); the op itself is appended to
    that block.
    """
    spec = op_class.irdl_spec
    same_type = SameOperandsAndResultType in op_class.traits
    shared = None
    if same_type:
        shared = draw_type(data, spec.operands[0][1].constraint)
    operand_types = []
    group_index: dict[str, int] = {}
    for name, definition in spec.operands:
        count = (
            data.draw(st.integers(0, 2)) if definition.variadic else 1
        )
        group_index[name] = len(operand_types)
        for _ in range(count):
            operand_types.append(
                shared
                if same_type
                else draw_type(data, definition.constraint)
            )
    block = Block(operand_types)
    operands = list(block.args)
    attributes = {}
    for name, definition in spec.attrs:
        if definition.optional and data.draw(st.booleans()):
            continue
        attributes[name] = draw_attribute(data, definition)
    result_types = []
    for name, definition in spec.results:
        default = definition.default
        if same_type:
            result_types.append(shared)
        elif isinstance(default, SameAs):
            result_types.append(
                operands[group_index[default.field]].type
            )
        elif isinstance(default, ElementOf):
            result_types.append(
                operands[group_index[default.field]].type.element_type
            )
        else:
            result_types.append(draw_type(data, definition.constraint))
    op = object.__new__(op_class)
    Operation.__init__(
        op,
        operands=operands,
        result_types=result_types,
        attributes=attributes,
    )
    block.add_op(op)
    return block, op


# ---------------------------------------------------------------------------
# Constructor-based builders for ops with structural (region/correlated)
# requirements the generic spec builder cannot satisfy.
# ---------------------------------------------------------------------------


def _build_constant(data):
    block = Block()
    if data.draw(st.booleans()):
        op = arith.ConstantOp.from_int(data.draw(st.integers(-50, 50)))
    else:
        op = arith.ConstantOp.from_float(
            data.draw(st.integers(-20, 20)) * 0.5, f64
        )
    block.add_op(op)
    return block, op


def _build_module(data):
    block = Block()
    op = builtin.ModuleOp([])
    block.add_op(op)
    return block, op


def _build_func(data):
    block = Block()
    op = func.FuncOp(
        data.draw(IDENTIFIERS), [MemRefType(f64, (4,)), f64]
    )
    block.add_op(op)
    return block, op


def _build_scf_for(data):
    n_iter = data.draw(st.integers(0, 2))
    block = Block([index] * 3 + [f64] * n_iter)
    lb, ub, step, *iter_args = block.args
    op = scf.ForOp(lb, ub, step, iter_args)
    op.body_block.add_op(scf.YieldOp(op.body_iter_args))
    block.add_op(op)
    return block, op


def _build_linalg_generic(data):
    n = data.draw(st.integers(1, 4))
    mtype = MemRefType(f64, (n,))
    block = Block([mtype, mtype])
    body = Block([f64, f64])
    body.add_op(linalg.YieldOp([body.args[0]]))
    op = linalg.GenericOp(
        [block.args[0]],
        [block.args[1]],
        [AffineMap.identity(1), AffineMap.identity(1)],
        ["parallel"],
        Region([body]),
    )
    block.add_op(op)
    return block, op


def _build_linalg_fill(data):
    mtype = MemRefType(f64, (data.draw(st.integers(1, 4)),))
    block = Block([f64, mtype])
    op = linalg.FillOp(block.args[0], block.args[1])
    block.add_op(op)
    return block, op


def _build_memref_load(data):
    rank = data.draw(st.integers(0, 2))
    mtype = MemRefType(f64, (2,) * rank)
    block = Block([mtype] + [index] * rank)
    op = memref.LoadOp(block.args[0], list(block.args[1:]))
    block.add_op(op)
    return block, op


def _build_memref_store(data):
    rank = data.draw(st.integers(0, 2))
    mtype = MemRefType(f64, (2,) * rank)
    block = Block([f64, mtype] + [index] * rank)
    op = memref.StoreOp(
        block.args[0], block.args[1], list(block.args[2:])
    )
    block.add_op(op)
    return block, op


def _build_ms_generic(data):
    n = data.draw(st.integers(1, 5))
    mtype = MemRefType(f64, (n,))
    block = Block([mtype, mtype])
    body = Block([f64, f64])
    body.add_op(memref_stream.YieldOp([body.args[0]]))
    op = memref_stream.GenericOp(
        [block.args[0]],
        [block.args[1]],
        [AffineMap.identity(1), AffineMap.identity(1)],
        ["parallel"],
        [n],
        Region([body]),
    )
    block.add_op(op)
    return block, op


def _build_ms_streaming_region(data):
    n = data.draw(st.integers(1, 5))
    mtype = MemRefType(f64, (n,))
    block = Block([mtype, mtype])
    body, _ = memref_stream.StreamingRegionOp.body_for([f64], [f64])
    pattern = memref_stream.StridePatternAttr(
        DenseIntAttr([n]), AffineMap.identity(1)
    )
    op = memref_stream.StreamingRegionOp(
        [block.args[0]], [block.args[1]], [pattern, pattern], body
    )
    block.add_op(op)
    return block, op


def _build_rv_func(data):
    block = Block()
    op = riscv_func.FuncOp(
        data.draw(IDENTIFIERS),
        riscv_func.abi_arg_types(["int", "float"]),
    )
    block.add_op(op)
    return block, op


def _build_rv_scf_for(data):
    n_iter = data.draw(st.integers(0, 2))
    block = Block(
        [IntRegisterType()] * 3 + [FloatRegisterType()] * n_iter
    )
    lb, ub, step, *iter_args = block.args
    op = riscv_scf.ForOp(lb, ub, step, iter_args)
    op.body_block.add_op(riscv_scf.YieldOp(op.body_iter_args))
    block.add_op(op)
    return block, op


def _build_frep(data):
    n_iter = data.draw(st.integers(0, 2))
    block = Block([IntRegisterType()] + [FloatRegisterType()] * n_iter)
    op = riscv_snitch.FrepOuter(block.args[0], list(block.args[1:]))
    op.body_block.add_op(
        riscv_snitch.FrepYieldOp(op.body_iter_args)
    )
    block.add_op(op)
    return block, op


def _build_ss_streaming_region(data):
    n_in = data.draw(st.integers(0, 2))
    # At least one stream: an empty `patterns = []` would reparse as a
    # DenseIntAttr (and zero-stream regions never occur in pipelines).
    n_out = data.draw(st.integers(1 if n_in == 0 else 0, 1))
    block = Block([IntRegisterType("t0")] * (n_in + n_out))
    pattern = snitch_stream.StridePattern([4], [8])
    op = snitch_stream.StreamingRegionOp(
        list(block.args[:n_in]),
        list(block.args[n_in:]),
        [pattern] * (n_in + n_out),
    )
    block.add_op(op)
    return block, op


#: op name -> constructor-based builder.
STRUCTURAL_BUILDERS = {
    "arith.constant": _build_constant,
    "builtin.module": _build_module,
    "func.func": _build_func,
    "scf.for": _build_scf_for,
    "linalg.generic": _build_linalg_generic,
    "linalg.fill": _build_linalg_fill,
    "memref.load": _build_memref_load,
    "memref.store": _build_memref_store,
    "memref_stream.generic": _build_ms_generic,
    "memref_stream.streaming_region": _build_ms_streaming_region,
    "rv_func.func": _build_rv_func,
    "rv_scf.for": _build_rv_scf_for,
    "rv_snitch.frep_outer": _build_frep,
    "snitch_stream.streaming_region": _build_ss_streaming_region,
}


def build_op(data, op_name) -> tuple[Block, Operation]:
    builder = STRUCTURAL_BUILDERS.get(op_name)
    if builder is not None:
        return builder(data)
    return build_from_spec(data, op_registry.lookup(op_name))


# ---------------------------------------------------------------------------
# Structural equality
# ---------------------------------------------------------------------------


def assert_structurally_equal(a: Operation, b: Operation, vmap) -> None:
    """Deep equality up to SSA-value renaming (``vmap``: a-value -> b)."""
    assert a.name == b.name
    assert a.attributes == b.attributes
    assert len(a.operands) == len(b.operands)
    for va, vb in zip(a.operands, b.operands):
        assert va.type == vb.type
        assert vmap[id(va)] is vb
    assert len(a.results) == len(b.results)
    for ra, rb in zip(a.results, b.results):
        assert ra.type == rb.type
        vmap[id(ra)] = rb
    assert len(a.regions) == len(b.regions)
    for ra, rb in zip(a.regions, b.regions):
        assert len(ra.blocks) == len(rb.blocks)
        for block_a, block_b in zip(ra.blocks, rb.blocks):
            assert [x.type for x in block_a.args] == [
                x.type for x in block_b.args
            ]
            for xa, xb in zip(block_a.args, block_b.args):
                vmap[id(xa)] = xb
            assert len(block_a.ops) == len(block_b.ops)
            for op_a, op_b in zip(block_a.ops, block_b.ops):
                assert_structurally_equal(op_a, op_b, vmap)


# ---------------------------------------------------------------------------
# The properties
# ---------------------------------------------------------------------------

ALL_OP_NAMES = sorted(op_registry.registered_names())


def test_every_registered_op_is_covered():
    """Each registered op has a spec and a working builder path."""
    for name in ALL_OP_NAMES:
        op_class = op_registry.lookup(name)
        assert hasattr(op_class, "irdl_spec"), name
        if name in STRUCTURAL_BUILDERS:
            continue
        assert not op_class.irdl_spec.regions, (
            f"{name} has regions but no structural builder"
        )


@pytest.mark.parametrize("op_name", ALL_OP_NAMES)
@given(data=st.data())
@settings(max_examples=10, deadline=None)
def test_roundtrip(op_name, data):
    block, op = build_op(data, op_name)
    op.verify_()

    harness = _HarnessOp(regions=[Region([block])])
    text = print_op(harness)
    parsed = parse_op(text)

    parsed_block = parsed.regions[0].blocks[0]
    vmap = {
        id(xa): xb for xa, xb in zip(block.args, parsed_block.args)
    }
    parsed_ops = list(parsed_block.ops)
    original_ops = list(block.ops)
    assert len(parsed_ops) == len(original_ops)
    for original, reparsed in zip(original_ops, parsed_ops):
        assert_structurally_equal(original, reparsed, vmap)

    reparsed = parsed_ops[-1]
    assert type(reparsed) is type(op)
    reparsed.verify_()

    # Printing the reparsed IR reproduces the text exactly.
    assert print_op(parsed) == text
