"""Reproduction assertions for the paper's headline claims.

Each test pins one claim from the evaluation (Section 4) to a concrete,
checkable property of this implementation.  Thresholds are set slightly
below the paper's reported values to absorb the cycle-model substitution
(see DESIGN.md Section 2).
"""

import numpy as np
import pytest

from repro import api, kernels
from repro.kernels import lowlevel
from repro.transforms.pipelines import TABLE3_STAGES


def compile_and_run(builder, sizes, pipeline="ours", seed=3):
    module, spec = builder(*sizes)
    compiled = api.compile_linalg(module, pipeline=pipeline)
    result = api.run_kernel(compiled, spec.random_arguments(seed=seed))
    return spec, compiled, result


class TestRQ1LowLevelExpressiveness:
    """RQ1: the assembly-level dialects express peak-tuned kernels."""

    def test_sum32_high_utilization(self):
        module, spec = lowlevel.lowlevel_sum_f32(40, 40)
        compiled = api.compile_lowlevel(module, spec.name)
        result = api.run_kernel(compiled, spec.random_arguments())
        assert result.trace.fpu_utilization > 0.9  # paper: 95%

    def test_relu32_high_utilization(self):
        module, spec = lowlevel.lowlevel_relu_f32(40, 40)
        compiled = api.compile_lowlevel(module, spec.name)
        result = api.run_kernel(compiled, spec.random_arguments())
        assert result.trace.fpu_utilization > 0.9

    def test_matmul_t32_throughput(self):
        """Paper: MatMulT reaches 74% util but only 2.45 FLOPs/cycle
        due to extra vector packing instructions."""
        module, spec = lowlevel.lowlevel_matmul_t_f32(64, 40)
        compiled = api.compile_lowlevel(module, spec.name)
        result = api.run_kernel(compiled, spec.random_arguments())
        assert 0.6 < result.trace.fpu_utilization < 1.0
        assert 2.0 < result.trace.throughput < 4.0

    def test_constant_overhead(self):
        """Fig 9 bottom: cycle-count overhead is size-independent."""
        overheads = []
        for m in (8, 16, 24, 32, 40):
            spec, _, result = compile_and_run(
                kernels.sum_kernel, (m, 40)
            )
            overheads.append(result.trace.cycles - spec.min_cycles)
        assert len(set(overheads)) == 1


class TestRQ2SpillFreeAllocation:
    """RQ2: spill-free allocation fits every kernel (Table 2)."""

    TABLE2_F64 = [
        (kernels.fill, (4, 4)),
        (kernels.relu, (4, 4)),
        (kernels.sum_kernel, (4, 4)),
        (kernels.max_pool3x3, (4, 4)),
        (kernels.sum_pool3x3, (4, 4)),
        (kernels.conv3x3, (4, 4)),
        (kernels.matmul, (4, 16, 8)),
    ]

    @pytest.mark.parametrize(
        "builder,sizes",
        TABLE2_F64,
        ids=[b.__name__ for b, _ in TABLE2_F64],
    )
    def test_within_register_budget(self, builder, sizes):
        """All kernels allocate within 20 FP / 15 int caller-saved
        registers — with several to spare (paper Section 4.3)."""
        _, compiled, _ = compile_and_run(builder, sizes)
        fp, integer = compiled.register_usage()
        assert fp <= 20
        assert integer <= 15

    def test_simple_kernels_use_few_registers(self):
        """Paper Table 2: Fill needs 3 FP / 3 int registers."""
        _, compiled, _ = compile_and_run(kernels.fill, (4, 4))
        fp, integer = compiled.register_usage()
        assert fp <= 4
        assert integer <= 5

    def test_spare_registers_remain(self):
        """"maintaining several spare" — at least 5 of each kind."""
        for builder, sizes in self.TABLE2_F64:
            _, compiled, _ = compile_and_run(builder, sizes)
            fp, integer = compiled.register_usage()
            assert fp <= 15, builder.__name__
            assert integer <= 13, builder.__name__


class TestRQ3CompilerPerformance:
    """RQ3: the DSL-to-asm compiler reaches near-peak utilization."""

    def test_parallel_kernels_above_90(self):
        """Fig 10: Sum/Fill/ReLU approach 100% as sizes grow."""
        for builder in (kernels.sum_kernel, kernels.fill, kernels.relu):
            _, _, result = compile_and_run(builder, (20, 20))
            assert result.trace.fpu_utilization > 0.9, builder.__name__

    def test_reduction_kernels_in_70_80_band(self):
        """Fig 10: Conv/Pool utilization sits in the 70-80% band."""
        for builder in (
            kernels.conv3x3,
            kernels.max_pool3x3,
            kernels.sum_pool3x3,
        ):
            _, _, result = compile_and_run(builder, (20, 20))
            assert 0.65 < result.trace.fpu_utilization < 0.9, (
                builder.__name__
            )

    def test_matmul_above_90(self):
        """Table 3 final stage: >90% FPU occupancy."""
        _, _, result = compile_and_run(kernels.matmul, (1, 200, 5))
        assert result.trace.fpu_utilization > 0.9

    def test_baselines_plateau(self):
        """Fig 10: flows without SSR/FREP stay below 50%."""
        for pipeline in ("clang", "mlir"):
            for builder, sizes in [
                (kernels.sum_kernel, (20, 20)),
                (kernels.max_pool3x3, (20, 20)),
                (kernels.matmul, (1, 200, 5)),
            ]:
                _, _, result = compile_and_run(
                    builder, sizes, pipeline=pipeline
                )
                assert result.trace.fpu_utilization < 0.5

    def test_utilization_grows_with_size(self):
        """Fig 10: utilization increases monotonically with width."""
        utils = []
        for n in (4, 8, 12, 16, 20):
            _, _, result = compile_and_run(kernels.sum_kernel, (20, n))
            utils.append(result.trace.fpu_utilization)
        assert utils == sorted(utils)


class TestTable3Ablation:
    """The incremental optimization study on MatMul 1x200 x 200x5."""

    @pytest.fixture(scope="class")
    def stages(self):
        rows = {}
        for label, pipeline in TABLE3_STAGES:
            spec, compiled, result = compile_and_run(
                kernels.matmul, (1, 200, 5), pipeline=pipeline
            )
            rows[label] = (compiled, result)
        return rows

    def test_all_stages_correct(self, stages):
        module, spec = kernels.matmul(1, 200, 5)
        args = spec.random_arguments(seed=3)
        expected = spec.reference(*args)[2]
        for label, pipeline in TABLE3_STAGES:
            compiled = stages[label][0]
            result = api.run_kernel(compiled, args)
            np.testing.assert_allclose(
                result.arrays[2], expected, atol=1e-9, err_msg=label
            )

    def test_memory_op_elision(self, stages):
        """Loads: 3000 -> 1000 -> 5 -> 5 -> 0 -> 0 (paper Table 3)."""
        loads = [
            stages[label][1].trace.loads for label, _ in TABLE3_STAGES
        ]
        stores = [
            stages[label][1].trace.stores for label, _ in TABLE3_STAGES
        ]
        assert loads == [3000, 1000, 5, 5, 0, 0]
        assert stores == [1005, 1000, 5, 5, 0, 0]

    def test_cycles_strictly_improve_overall(self, stages):
        cycles = [
            stages[label][1].trace.cycles for label, _ in TABLE3_STAGES
        ]
        assert cycles[0] > 8 * cycles[-1]  # paper: ~36x end to end
        assert cycles == sorted(cycles, reverse=True)

    def test_occupancy_milestones(self, stages):
        """Baseline ~2.5%, +Streams mid-single-digits-to-teens,
        final stage >90% (paper Table 3)."""
        occupancy = {
            label: stages[label][1].trace.fpu_utilization
            for label, _ in TABLE3_STAGES
        }
        assert occupancy["Baseline"] < 0.06
        assert occupancy["+ Streams"] < 0.2
        assert 0.15 < occupancy["+ Scalar Replacement"] < 0.35
        assert occupancy["+ Unroll-and-Jam"] > 0.9

    def test_fmadd_constant_across_stages(self, stages):
        """Every stage executes exactly 1000 FMAs (the real work)."""
        for label, _ in TABLE3_STAGES:
            assert stages[label][1].trace.fmadd == 1000, label

    def test_frep_counts(self, stages):
        """+FRep emits two hardware loops (fill + matmul); after fill
        fusion only one remains.  The paper's Table 3 FRep column is a
        *static* count over the emitted assembly."""
        frep_static = {
            label: stages[label][0]
            .program.static_counts()
            .get("frep.o", 0)
            for label, _ in TABLE3_STAGES
        }
        assert frep_static["Baseline"] == 0
        assert frep_static["+ FRep"] == 2
        assert frep_static["+ Fuse Fill"] == 1
        assert frep_static["+ Unroll-and-Jam"] == 1


class TestFig11Sweep:
    def test_roofline_fraction_grows(self):
        """Fig 11: throughput fraction grows along both N and K."""
        def fraction(n, k):
            _, _, result = compile_and_run(kernels.matmul, (1, k, n))
            return result.trace.throughput / 2.0

        assert fraction(4, 4) < fraction(16, 16) < fraction(48, 48)
        assert fraction(48, 48) > 0.9  # paper: >90% past the frontier

    def test_small_sizes_setup_dominated(self):
        """Fig 11: smallest shapes never reach 80% of peak."""
        _, _, result = compile_and_run(kernels.matmul, (1, 4, 4))
        assert result.trace.throughput / 2.0 < 0.8
