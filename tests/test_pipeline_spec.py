"""Tests for the textual pipeline-spec language (parse/print/errors)."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.pipeline_spec import (
    PassSpec,
    PipelineSpecError,
    parse_pipeline_spec,
    pass_to_spec,
    print_pipeline_spec,
)


class TestParse:
    def test_empty_spec_is_empty_pipeline(self):
        assert parse_pipeline_spec("") == []
        assert parse_pipeline_spec("   ") == []

    def test_single_pass(self):
        assert parse_pipeline_spec("dce") == [PassSpec("dce")]

    def test_sequence(self):
        assert parse_pipeline_spec("fuse-fill,dce,canonicalize") == [
            PassSpec("fuse-fill"),
            PassSpec("dce"),
            PassSpec("canonicalize"),
        ]

    def test_whitespace_tolerated(self):
        assert parse_pipeline_spec(" fuse-fill , dce ") == [
            PassSpec("fuse-fill"),
            PassSpec("dce"),
        ]

    def test_options_typed(self):
        (spec,) = parse_pipeline_spec(
            "unroll-and-jam{factor=4 flag=true ratio=0.5 mode=fast}"
        )
        assert spec.options == {
            "factor": 4,
            "flag": True,
            "ratio": 0.5,
            "mode": "fast",
        }
        assert isinstance(spec.options["factor"], int)
        assert isinstance(spec.options["flag"], bool)
        assert isinstance(spec.options["ratio"], float)

    def test_false_and_negative_values(self):
        (spec,) = parse_pipeline_spec("p{a=false b=-3}")
        assert spec.options == {"a": False, "b": -3}

    def test_quoted_string_value(self):
        (spec,) = parse_pipeline_spec('p{label="hello, world"}')
        assert spec.options == {"label": "hello, world"}

    def test_quoted_escapes(self):
        (spec,) = parse_pipeline_spec(r'p{label="a \"b\" \\c"}')
        assert spec.options == {"label": 'a "b" \\c'}

    def test_multiple_option_groups(self):
        specs = parse_pipeline_spec("a{x=1},b,c{y=false}")
        assert [s.name for s in specs] == ["a", "b", "c"]
        assert specs[0].options == {"x": 1}
        assert specs[2].options == {"y": False}


class TestParseErrors:
    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("fuse-fill,", "expected a pass name after ','"),
            (",dce", "expected a pass name"),
            ("a{x}", "expected '='"),
            ("a{x=}", "expected an option value"),
            ("a{x=1", "expected an option name, found end of spec"),
            ("a}b", "expected ','"),
            ('a{s="oops}', "unterminated quoted value"),
            ("a{x=1 x=2}", "duplicate option 'x'"),
        ],
    )
    def test_malformed(self, text, fragment):
        with pytest.raises(PipelineSpecError, match="column"):
            try:
                parse_pipeline_spec(text)
            except PipelineSpecError as error:
                assert fragment in str(error)
                raise

    def test_error_reports_column(self):
        with pytest.raises(PipelineSpecError) as info:
            parse_pipeline_spec("dce,{}")
        assert "column 5" in str(info.value)

    def test_error_is_value_error(self):
        with pytest.raises(ValueError):
            parse_pipeline_spec(",")


class TestPrint:
    def test_bare_names(self):
        assert (
            print_pipeline_spec([PassSpec("a"), PassSpec("b")]) == "a,b"
        )

    def test_options_rendered(self):
        text = print_pipeline_spec(
            [PassSpec("u", {"factor": 4, "frep": True, "m": "fast"})]
        )
        assert text == "u{factor=4 frep=true m=fast}"

    def test_string_needing_quotes(self):
        text = print_pipeline_spec([PassSpec("p", {"s": "a b"})])
        assert text == 'p{s="a b"}'
        assert parse_pipeline_spec(text)[0].options == {"s": "a b"}

    def test_stringy_bool_quoted(self):
        # The *string* "true" must not round-trip into a bool.
        text = print_pipeline_spec([PassSpec("p", {"s": "true"})])
        assert parse_pipeline_spec(text)[0].options == {"s": "true"}


# -- round-trip property ------------------------------------------------------

names = st.from_regex(r"[a-z][a-z0-9]{0,8}(-[a-z0-9]{1,5}){0,2}", fullmatch=True)
values = st.one_of(
    st.booleans(),
    st.integers(-(10**9), 10**9),
    st.text(
        st.characters(
            codec="ascii", exclude_categories=("C",)
        ),
        min_size=1,
        max_size=12,
    ),
)
specs = st.lists(
    st.builds(
        PassSpec,
        names,
        st.dictionaries(names, values, max_size=3),
    ),
    max_size=6,
)


class TestRoundTrip:
    @given(specs)
    def test_print_parse_identity(self, spec_list):
        text = print_pipeline_spec(spec_list)
        assert parse_pipeline_spec(text) == spec_list

    @given(specs)
    def test_printed_form_is_canonical(self, spec_list):
        text = print_pipeline_spec(spec_list)
        assert print_pipeline_spec(parse_pipeline_spec(text)) == text


class TestPassToSpec:
    def test_default_options_omitted(self):
        from repro.transforms.lower_to_snitch import LowerToSnitchPass

        assert pass_to_spec(LowerToSnitchPass()) == PassSpec(
            "lower-to-snitch"
        )

    def test_non_default_options_included(self):
        from repro.transforms.lower_to_snitch import LowerToSnitchPass
        from repro.transforms.unroll_and_jam import UnrollAndJamPass

        assert pass_to_spec(LowerToSnitchPass(use_frep=False)) == (
            PassSpec("lower-to-snitch", {"use-frep": False})
        )
        assert pass_to_spec(UnrollAndJamPass(4)) == PassSpec(
            "unroll-and-jam", {"factor": 4}
        )

    def test_lambda_pass_prints_bare(self):
        from repro.ir.pass_manager import LambdaPass

        assert pass_to_spec(LambdaPass("x", lambda m: None)) == (
            PassSpec("x")
        )
