"""Tests for the interchange scheduling pass."""

import numpy as np
import pytest

from repro import api, kernels
from repro.dialects import memref_stream
from repro.ir import IRError, verify
from repro.transforms.convert_linalg_to_memref_stream import (
    ConvertLinalgToMemrefStreamPass,
)
from repro.transforms.fuse_fill import FuseFillPass
from repro.transforms.interchange import (
    InterchangePass,
    apply_interchange,
    format_permutation,
    legal_interchange_permutations,
    parse_permutation,
)
from repro.transforms.pipelines import scheduled_pipeline_spec
from repro.transforms.scalar_replacement import ScalarReplacementPass


def _converted_matmul(m=2, k=3, n=4):
    module, spec = kernels.matmul(m, k, n)
    ConvertLinalgToMemrefStreamPass().run(module)
    FuseFillPass().run(module)
    (g,) = [
        op
        for op in module.walk()
        if isinstance(op, memref_stream.GenericOp)
    ]
    return module, g, spec


class TestPermutationSyntax:
    def test_round_trip(self):
        assert parse_permutation("1-0-2") == (1, 0, 2)
        assert format_permutation((1, 0, 2)) == "1-0-2"
        assert parse_permutation(format_permutation((3, 1, 0, 2))) == (
            3, 1, 0, 2,
        )

    def test_single_dim(self):
        assert parse_permutation("0") == (0,)

    def test_malformed(self):
        with pytest.raises(IRError):
            parse_permutation("1-0-x")
        with pytest.raises(IRError):
            parse_permutation("1-1-2")  # not a permutation
        with pytest.raises(IRError):
            parse_permutation("1-2-3")  # not 0-based


class TestLegality:
    def test_partition_preserved(self):
        perms = legal_interchange_permutations(
            ["parallel", "parallel", "reduction"]
        )
        assert (0, 1, 2) in perms
        assert (1, 0, 2) in perms
        assert (2, 0, 1) not in perms  # reduction before parallel
        assert len(perms) == 2

    def test_two_by_two(self):
        perms = legal_interchange_permutations(
            ["parallel", "parallel", "reduction", "reduction"]
        )
        assert len(perms) == 4

    def test_interleaved_means_too_late(self):
        assert (
            legal_interchange_permutations(
                ["parallel", "reduction", "interleaved"]
            )
            == []
        )

    def test_illegal_application_raises(self):
        _, g, _ = _converted_matmul()
        with pytest.raises(IRError, match="parallel-then-reduction"):
            apply_interchange(g, (2, 1, 0))

    def test_rank_mismatch_raises(self):
        _, g, _ = _converted_matmul()
        with pytest.raises(IRError, match="dims"):
            apply_interchange(g, (1, 0))

    def test_after_scalar_replacement_raises(self):
        module, g, _ = _converted_matmul()
        ScalarReplacementPass().run(module)
        with pytest.raises(IRError, match="scalar-replacement"):
            apply_interchange(g, (1, 0, 2))


class TestApplication:
    def test_attributes_permuted(self):
        module, g, _ = _converted_matmul(2, 3, 4)
        assert g.bounds == (2, 4, 3)  # (i, j, k) after conversion
        apply_interchange(g, (1, 0, 2))
        verify(module)
        assert g.bounds == (4, 2, 3)
        assert g.iterator_types == [
            "parallel", "parallel", "reduction",
        ]
        # A's map was (i, k) = (d0, d2); i is now d1.
        a_map = g.indexing_maps[0]
        assert a_map.evaluate((5, 7, 9)) == (7, 9)

    def test_identity_is_noop(self):
        module, g, _ = _converted_matmul()
        before = (g.bounds, list(g.iterator_types))
        InterchangePass().run(module)
        InterchangePass(permutation="").run(module)
        assert (g.bounds, list(g.iterator_types)) == before

    def test_pass_skips_other_ranks(self):
        """A rank-2 generic next to a rank-3 permutation is left alone."""
        module, spec = kernels.relu(4, 4)
        ConvertLinalgToMemrefStreamPass().run(module)
        (g,) = [
            op
            for op in module.walk()
            if isinstance(op, memref_stream.GenericOp)
        ]
        InterchangePass(permutation="1-0-2").run(module)
        assert g.bounds == (4, 4)

    def test_interchanged_kernel_validates(self):
        """The permuted schedule compiles and matches numpy."""
        spec_text = scheduled_pipeline_spec(permutation="1-0-2")
        module, spec = kernels.matmul(3, 5, 4)
        compiled = api.compile_linalg(module, pipeline=spec_text)
        arguments = spec.random_arguments(seed=1)
        run = api.run_kernel(compiled, arguments)
        expected = spec.reference(*arguments)
        np.testing.assert_allclose(
            run.arrays[2], expected[2], atol=1e-8
        )

    def test_all_legal_conv_interchanges_validate(self):
        """Every legal conv3x3 permutation produces a correct kernel."""
        kinds = ["parallel", "parallel", "reduction", "reduction"]
        for perm in legal_interchange_permutations(kinds):
            spec_text = scheduled_pipeline_spec(
                permutation=format_permutation(perm)
            )
            module, spec = kernels.conv3x3(4, 4)
            compiled = api.compile_linalg(module, pipeline=spec_text)
            arguments = spec.random_arguments(seed=0)
            run = api.run_kernel(compiled, arguments)
            expected = spec.reference(*arguments)
            np.testing.assert_allclose(
                run.arrays[2], expected[2], atol=1e-8
            )

    def test_interchange_changes_access_order(self):
        """Swapping the parallel dims must change the emitted asm
        (otherwise the schedule axis is a no-op)."""
        module_a, _ = kernels.matmul(4, 4, 8)
        module_b, _ = kernels.matmul(4, 4, 8)
        asm_default = api.compile_linalg(
            module_a, pipeline=scheduled_pipeline_spec()
        ).asm
        asm_swapped = api.compile_linalg(
            module_b,
            pipeline=scheduled_pipeline_spec(permutation="1-0-2"),
        ).asm
        assert asm_default != asm_swapped

    def test_scheduled_spec_default_matches_ours(self):
        """scheduled_pipeline_spec() with no choices == 'ours'."""
        module_a, _ = kernels.matmul(2, 4, 6)
        module_b, _ = kernels.matmul(2, 4, 6)
        ours = api.compile_linalg(module_a, pipeline="ours").asm
        scheduled = api.compile_linalg(
            module_b, pipeline=scheduled_pipeline_spec()
        ).asm
        assert ours == scheduled
