"""Tests for builder, printer, verifier, rewriter and pass manager."""

import pytest

from repro.dialects import arith, builtin, func, scf
from repro.ir import (
    Block,
    Builder,
    InsertPoint,
    IRError,
    LambdaPass,
    Operation,
    PassManager,
    PatternRewriter,
    RewritePattern,
    TypedPattern,
    VerificationError,
    apply_patterns,
    f64,
    index,
    print_op,
    single_block_region,
    verify,
)


class TestBuilder:
    def test_insert_at_end(self):
        block = Block()
        builder = Builder.at_end(block)
        a = builder.insert(arith.ConstantOp.from_int(1))
        b = builder.insert(arith.ConstantOp.from_int(2))
        assert block.ops == (a, b)

    def test_insert_at_start(self):
        block = Block()
        tail = arith.ConstantOp.from_int(9)
        block.add_op(tail)
        builder = Builder.at_start(block)
        head = builder.insert(arith.ConstantOp.from_int(1))
        assert block.ops == (head, tail)

    def test_before_after(self):
        block = Block()
        anchor = arith.ConstantOp.from_int(5)
        block.add_op(anchor)
        Builder.before(anchor).insert(arith.ConstantOp.from_int(1))
        assert block.ops[0].value.value == 1

    def test_before_detached_rejected(self):
        with pytest.raises(IRError):
            InsertPoint.before(arith.ConstantOp.from_int(1))


class TestPrinter:
    def test_prints_constant(self):
        module = builtin.ModuleOp([arith.ConstantOp.from_int(42)])
        text = print_op(module)
        assert "arith.constant" in text
        assert "builtin.module" in text
        assert "value = 42" in text

    def test_value_numbering_stable(self):
        c = arith.ConstantOp.from_int(1)
        add = arith.AddiOp(c.result, c.result)
        module = builtin.ModuleOp([c, add])
        text = print_op(module)
        assert "%0" in text
        assert '"arith.addi"(%0, %0)' in text

    def test_name_hints_used(self):
        c = arith.ConstantOp.from_int(1)
        c.results[0].name_hint = "bound"
        module = builtin.ModuleOp([c])
        assert "%bound" in print_op(module)


class TestVerifier:
    def test_valid_module(self):
        c = arith.ConstantOp.from_float(0.0, f64)
        add = arith.AddfOp(c.result, c.result)
        verify(builtin.ModuleOp([c, add]))

    def test_use_before_def_rejected(self):
        c = arith.ConstantOp.from_float(0.0, f64)
        add = arith.AddfOp(c.result, c.result)
        # Reversed order: add before its operand's definition.
        module = builtin.ModuleOp([])
        module.block.add_op(add)
        module.block.add_op(c)
        with pytest.raises(VerificationError):
            verify(module)

    def test_terminator_must_be_last(self):
        fn = func.FuncOp("f", [])
        fn.entry_block.add_op(func.ReturnOp())
        fn.entry_block.add_op(arith.ConstantOp.from_int(1))
        with pytest.raises(VerificationError):
            verify(builtin.ModuleOp([fn]))

    def test_isolated_from_above(self):
        c = arith.ConstantOp.from_float(1.0, f64)
        fn = func.FuncOp("f", [])
        # Illegal: function body referencing a value defined outside.
        fn.entry_block.add_op(arith.AddfOp(c.result, c.result))
        fn.entry_block.add_op(func.ReturnOp())
        module = builtin.ModuleOp([c, fn])
        with pytest.raises(VerificationError):
            verify(module)

    def test_op_specific_hook_runs(self):
        bad = arith.ConstantOp.from_int(1)
        bad.results[0].type = f64  # int constant with float type
        with pytest.raises(IRError):
            verify(builtin.ModuleOp([bad]))


class _FoldAddZero(TypedPattern):
    """Replace x + 0 with x (test pattern)."""

    op_type = arith.AddiOp

    def rewrite(self, op, rewriter):
        owner = op.rhs.owner
        if (
            isinstance(owner, arith.ConstantOp)
            and owner.value.value == 0
        ):
            rewriter.replace_matched_op([], new_results=[op.lhs])


class TestRewriter:
    def _module(self):
        a = arith.ConstantOp.from_int(7)
        zero = arith.ConstantOp.from_int(0)
        add = arith.AddiOp(a.result, zero.result)
        use = arith.AddiOp(add.result, add.result)
        return builtin.ModuleOp([a, zero, add, use]), add, use

    def test_pattern_applies(self):
        module, add, use = self._module()
        changed = apply_patterns(module, [_FoldAddZero()])
        assert changed
        assert add.parent is None  # erased
        # The use now refers to the constant directly.
        assert use.operands[0].owner.value.value == 7

    def test_fixpoint_reached(self):
        module, *_ = self._module()
        apply_patterns(module, [_FoldAddZero()])
        assert not apply_patterns(module, [_FoldAddZero()])

    def test_nonconverging_pattern_detected(self):
        class Flip(RewritePattern):
            def match_and_rewrite(self, op, rewriter):
                if isinstance(op, arith.AddiOp):
                    rewriter.replace_op(
                        op, arith.AddiOp(op.rhs, op.lhs)
                    )

        module, *_ = self._module()
        with pytest.raises(IRError):
            apply_patterns(module, [Flip()], max_iterations=5)

    def test_replace_op_arity_checked(self):
        module, add, _ = self._module()
        rewriter = PatternRewriter(add)
        with pytest.raises(IRError):
            rewriter.replace_op(add, [], new_results=[])

    def test_insert_before_and_erase(self):
        module, add, use = self._module()
        rewriter = PatternRewriter(add)
        fresh = arith.ConstantOp.from_int(3)
        rewriter.insert_before(fresh, add)
        assert module.block.ops[2] is fresh
        assert rewriter.changed


class TestPassManager:
    def test_runs_in_order(self):
        order = []
        pm = PassManager(
            [
                LambdaPass("a", lambda m: order.append("a")),
                LambdaPass("b", lambda m: order.append("b")),
            ]
        )
        pm.run(builtin.ModuleOp([]))
        assert order == ["a", "b"]

    def test_snapshots(self):
        pm = PassManager(
            [LambdaPass("noop", lambda m: None)], snapshot=True
        )
        pm.run(builtin.ModuleOp([]))
        assert [name for name, _ in pm.snapshots] == ["input", "noop"]

    def test_verification_between_passes(self):
        def corrupt(module):
            fn = func.FuncOp("f", [])
            fn.entry_block.add_op(func.ReturnOp())
            fn.entry_block.add_op(arith.ConstantOp.from_int(1))
            module.block.add_op(fn)

        pm = PassManager([LambdaPass("corrupt", corrupt)])
        with pytest.raises(VerificationError):
            pm.run(builtin.ModuleOp([]))

    def test_pipeline_spec(self):
        pm = PassManager([LambdaPass("x", lambda m: None)])
        assert pm.pipeline_spec == "x"


class TestFunctionPass:
    def test_runs_on_each_function(self):
        from repro.ir.pass_manager import FunctionPass

        seen = []

        class Collect(FunctionPass):
            name = "collect"

            def run_on_function(self, fn):
                seen.append(fn.sym_name)

        f1 = func.FuncOp("alpha", [])
        f1.entry_block.add_op(func.ReturnOp())
        f2 = func.FuncOp("beta", [])
        f2.entry_block.add_op(func.ReturnOp())
        Collect().run(builtin.ModuleOp([f1, f2]))
        assert seen == ["alpha", "beta"]

    def test_skips_non_functions(self):
        from repro.ir.pass_manager import FunctionPass

        class Boom(FunctionPass):
            name = "boom"

            def run_on_function(self, fn):  # pragma: no cover
                raise AssertionError("should not run")

        Boom().run(builtin.ModuleOp([arith.ConstantOp.from_int(1)]))
