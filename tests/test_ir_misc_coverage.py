"""Coverage for remaining IR utility surfaces: rewriter block surgery,
typed walks, value naming, insert points."""

import pytest

from repro.dialects import arith, builtin, func, riscv_cf
from repro.ir import (
    Block,
    Builder,
    InsertPoint,
    Operation,
    PatternRewriter,
    f64,
    print_op,
    single_block_region,
)
from repro.ir.printer import value_name


class TestInsertPoints:
    def test_after(self):
        block = Block()
        first = arith.ConstantOp.from_int(1)
        block.add_op(first)
        point = InsertPoint.after(first)
        second = arith.ConstantOp.from_int(2)
        block.insert_op(point.index, second)
        assert block.ops == (first, second)


class TestRewriterSurgery:
    def test_insert_after(self):
        a = arith.ConstantOp.from_int(1)
        module = builtin.ModuleOp([a])
        rewriter = PatternRewriter(a)
        b = arith.ConstantOp.from_int(2)
        c = arith.ConstantOp.from_int(3)
        rewriter.insert_after([b, c], a)
        assert module.block.ops == (a, b, c)

    def test_insert_at_start(self):
        a = arith.ConstantOp.from_int(1)
        module = builtin.ModuleOp([a])
        rewriter = PatternRewriter(a)
        head = arith.ConstantOp.from_int(0)
        rewriter.insert_at_start(module.block, head)
        assert module.block.ops[0] is head

    def test_inline_block_before(self):
        inner_block = Block([f64])
        use = arith.AddfOp(inner_block.args[0], inner_block.args[0])
        inner_block.add_op(use)
        wrapper = Operation(regions=[single_block_region([])])
        wrapper.regions[0].blocks[0] = inner_block
        inner_block.parent = wrapper.regions[0]

        outer = Block()
        supplied = arith.ConstantOp.from_float(1.0, f64)
        anchor = arith.ConstantOp.from_int(9)
        outer.add_ops([supplied, anchor])
        rewriter = PatternRewriter(anchor)
        rewriter.inline_block_before(
            inner_block, anchor, [supplied.result]
        )
        assert use.parent is outer
        assert use.operands[0] is supplied.result

    def test_inline_arity_checked(self):
        from repro.ir import IRError

        block = Block([f64])
        anchor = arith.ConstantOp.from_int(1)
        parent = Block()
        parent.add_op(anchor)
        rewriter = PatternRewriter(anchor)
        with pytest.raises(IRError):
            rewriter.inline_block_before(block, anchor, [])


class TestWalks:
    def test_walk_type_filters(self):
        c1 = arith.ConstantOp.from_int(1)
        c2 = arith.ConstantOp.from_int(2)
        add = arith.AddiOp(c1.result, c2.result)
        module = builtin.ModuleOp([c1, c2, add])
        constants = list(module.walk_type(arith.ConstantOp))
        assert constants == [c1, c2]
        assert list(module.walk_type(arith.MulfOp)) == []


class TestValueName:
    def test_hinted(self):
        c = arith.ConstantOp.from_int(1)
        c.results[0].name_hint = "count"
        assert value_name(c.results[0]) == "%count"

    def test_block_argument(self):
        block = Block([f64])
        assert value_name(block.args[0]) == "%arg0"

    def test_anonymous(self):
        c = arith.ConstantOp.from_int(1)
        assert value_name(c.results[0]) == "%?"


class TestBranchPrinting:
    def test_beq_bne(self):
        from repro.dialects import riscv
        from repro.dialects.riscv import IntRegisterType

        t0 = riscv.GetRegisterOp(IntRegisterType("t0")).result
        t1 = riscv.GetRegisterOp(IntRegisterType("t1")).result
        assert (
            riscv_cf.BeqOp(t0, t1, "x").assembly_line()
            == "beq t0, t1, x"
        )
        assert (
            riscv_cf.BneOp(t0, t1, "x").assembly_line()
            == "bne t0, t1, x"
        )
