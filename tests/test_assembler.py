"""Tests for the assembler (asm text -> program)."""

import pytest

from repro.snitch.assembler import (
    AssemblerError,
    SUPPORTED_MNEMONICS,
    assemble,
)


class TestParsing:
    def test_rdrsrs(self):
        prog = assemble("add t0, t1, t2")
        inst = prog.instructions[0]
        assert inst.mnemonic == "add"
        assert inst.rd == "t0"
        assert inst.sources == ("t1", "t2")

    def test_load_store_operands(self):
        prog = assemble("fld fa0, -8(a1)\nfsd fa0, 16(a2)")
        load, store = prog.instructions
        assert load.rd == "fa0"
        assert load.sources == ("a1",)
        assert load.imm == -8
        assert store.sources == ("fa0", "a2")
        assert store.imm == 16

    def test_fma(self):
        inst = assemble("fmadd.d fa0, ft0, ft1, fa0").instructions[0]
        assert inst.sources == ("ft0", "ft1", "fa0")

    def test_branch(self):
        inst = assemble("blt t0, t1, .loop").instructions[0]
        assert inst.target == ".loop"

    def test_frep(self):
        inst = assemble("frep.o t2, 5, 0, 0").instructions[0]
        assert inst.sources == ("t2",)
        assert inst.frep_length == 5

    def test_csr(self):
        inst = assemble("csrsi ssrcfg, 1").instructions[0]
        assert inst.csr == "ssrcfg"
        assert inst.imm == 1

    def test_scfgwi(self):
        inst = assemble("scfgwi t0, 24").instructions[0]
        assert inst.sources == ("t0",)
        assert inst.imm == 24

    def test_vfmac_reads_rd(self):
        inst = assemble("vfmac.s ft3, ft0, ft1").instructions[0]
        assert inst.rd == "ft3"
        assert inst.sources == ("ft3", "ft0", "ft1")

    def test_vfsum_reads_rd(self):
        inst = assemble("vfsum.s ft4, ft3").instructions[0]
        assert inst.sources == ("ft4", "ft3")


class TestLabelsAndLayout:
    def test_labels_resolve(self):
        prog = assemble(
            """
            main:
                li t0, 1
            loop:
                addi t0, t0, -1
                bnez t0, loop
                ret
            """
        )
        assert prog.entry("main") == 0
        assert prog.entry("loop") == 1

    def test_dotted_local_labels(self):
        """Labels like .for_body1 must not be mistaken for directives."""
        prog = assemble(".for_body1:\n    ret")
        assert prog.entry(".for_body1") == 0

    def test_directives_skipped(self):
        prog = assemble(".globl f\nf:\n    ret")
        assert len(prog.instructions) == 1

    def test_comments_stripped(self):
        prog = assemble("li t0, 1  # load the count")
        assert prog.instructions[0].imm == 1

    def test_label_on_same_line(self):
        prog = assemble("start: li t0, 5")
        assert prog.entry("start") == 0
        assert prog.instructions[0].mnemonic == "li"

    def test_static_counts(self):
        prog = assemble("li t0, 1\nli t1, 2\nret")
        counts = prog.static_counts()
        assert counts["li"] == 2
        assert counts["ret"] == 1


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate t0")

    def test_unknown_register(self):
        with pytest.raises(AssemblerError):
            assemble("add t0, t1, t9")

    def test_bad_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("add t0, t1")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError):
            assemble("fld fa0, t1")

    def test_undefined_label_lookup(self):
        prog = assemble("ret")
        with pytest.raises(AssemblerError):
            prog.entry("nope")

    def test_supported_mnemonics_exported(self):
        assert "fmadd.d" in SUPPORTED_MNEMONICS
        assert "frep.o" in SUPPORTED_MNEMONICS
