"""Tests for the schedule-space autotuner (repro.tune)."""

import json

import numpy as np
import pytest

from repro import api, kernels
from repro.compiler import Compiler
from repro.kernels import networks
from repro.snitch.engine import ENGINE_VERSION
from repro.snitch.machine import SnitchMachine
from repro.snitch.memory import TCDM
from repro.tools import kernel_tuner
from repro.tune import (
    ScheduleConfig,
    ScheduleError,
    ScheduleSpace,
    TuneCache,
    TunedSchedule,
    evaluate_config,
    load_schedules,
    save_schedules,
    schedule_table,
    tune_kernel,
)


class TestScheduleConfig:
    def test_default(self):
        config = ScheduleConfig()
        assert config.is_default
        module_a, _ = kernels.matmul(2, 4, 6)
        module_b, _ = kernels.matmul(2, 4, 6)
        default_asm = api.compile_linalg(module_a, pipeline="ours").asm
        tuned_asm = api.compile_linalg(
            module_b, pipeline=config.pipeline_spec()
        ).asm
        assert default_asm == tuned_asm

    def test_key_and_json_round_trip(self):
        config = ScheduleConfig(
            permutation=(1, 0, 2), unroll_factor=4, num_cores=2
        )
        assert config.key() == "perm=1-0-2|factor=4|cores=2"
        assert ScheduleConfig.from_json(config.to_json()) == config
        assert ScheduleConfig.from_json(
            ScheduleConfig().to_json()
        ) == ScheduleConfig()

    def test_spec_carries_options(self):
        config = ScheduleConfig(permutation=(1, 0, 2), unroll_factor=8)
        spec = config.pipeline_spec()
        assert "interchange{permutation=1-0-2}" in spec
        assert "unroll-and-jam{factor=8}" in spec


class TestScheduleSpace:
    def test_matmul_space(self):
        space = ScheduleSpace.for_kernel("matmul", (4, 4, 4))
        configs = list(space.configs())
        assert configs[0].is_default
        assert space.size() == len(configs) == 4
        # 2 parallel-dim orders x {auto, factor 2}.
        keys = {c.key() for c in configs}
        assert "perm=id|factor=auto|cores=1" in keys
        assert "perm=1-0-2|factor=2|cores=1" in keys

    def test_elementwise_has_no_unroll_axis(self):
        space = ScheduleSpace.for_kernel("relu", (4, 8))
        assert all(
            c.unroll_factor is None for c in space.configs()
        )

    def test_factor_axis_follows_the_permuted_unroll_dim(self):
        # matmul(6, 4, 8): identity order unrolls N=8 (divisors 2, 4,
        # 8; heuristic 4), the swapped order unrolls M=6 (divisors
        # 2, 3, 6; heuristic 6... -> {2, 3}).
        space = ScheduleSpace.for_kernel("matmul", (6, 4, 8))
        assert set(space.unroll_factors_for(None)) == {None, 2, 8}
        assert set(space.unroll_factors_for((1, 0, 2))) == {None, 2, 3}

    def test_unknown_kernel(self):
        with pytest.raises(ScheduleError, match="unknown kernel"):
            ScheduleSpace.for_kernel("nope", (4, 4))

    def test_wrong_arity(self):
        with pytest.raises(ScheduleError, match="sizes"):
            ScheduleSpace.for_kernel("matmul", (4, 4))


class TestOracle:
    def test_default_config_matches_api(self):
        cycles = evaluate_config("matmul", (4, 8, 8), ScheduleConfig())
        module, spec = kernels.matmul(4, 8, 8)
        compiled = api.compile_linalg(module, pipeline="ours")
        run = api.run_kernel(
            compiled, spec.random_arguments(seed=0)
        )
        assert cycles == run.trace.cycles

    def test_cluster_config_scores_slowest_core(self):
        single = evaluate_config("sum", (16, 16), ScheduleConfig())
        quad = evaluate_config(
            "sum", (16, 16), ScheduleConfig(num_cores=4)
        )
        assert 0 < quad < single


class TestTuneKernel:
    def test_exhaustive_never_regresses(self):
        result = tune_kernel("matmul", (4, 4, 4))
        assert result.best.cycles <= result.default_cycles
        assert result.candidates_evaluated == 4
        assert any(o.config.is_default for o in result.candidates)

    def test_strict_improvement_exists(self):
        """matmul 1x16x64: factor 8 beats the heuristic's factor 4 —
        the acceptance-criteria witness for the Fig. 11 sweep."""
        result = tune_kernel("matmul", (1, 16, 64))
        assert result.best.cycles < result.default_cycles
        assert result.best.config.unroll_factor == 8

    def test_budget_is_respected(self):
        result = tune_kernel("conv3x3", (6, 6), budget=3)
        assert result.candidates_evaluated <= 3
        assert result.candidates[0].config.is_default

    def test_random_strategy_is_seed_deterministic(self):
        a = tune_kernel(
            "conv3x3", (6, 6), strategy="random", budget=5, seed=42
        )
        b = tune_kernel(
            "conv3x3", (6, 6), strategy="random", budget=5, seed=42
        )
        assert [o.config for o in a.candidates] == [
            o.config for o in b.candidates
        ]
        assert a.best.cycles == b.best.cycles
        different = tune_kernel(
            "conv3x3", (6, 6), strategy="random", budget=5, seed=43
        )
        assert a.seed != different.seed

    def test_greedy_never_regresses(self):
        result = tune_kernel("conv3x3", (6, 6), strategy="greedy")
        exhaustive = tune_kernel("conv3x3", (6, 6))
        assert result.best.cycles <= result.default_cycles
        # Greedy scores fewer candidates than the full space here.
        assert (
            result.candidates_evaluated
            <= exhaustive.candidates_evaluated
        )

    def test_parallel_evaluation_matches_serial(self):
        """workers>1 (process pool) must score identically to serial."""
        serial = tune_kernel("conv3x3", (6, 6), workers=1)
        parallel = tune_kernel("conv3x3", (6, 6), workers=2)
        assert [o.cycles for o in serial.candidates] == [
            o.cycles for o in parallel.candidates
        ]
        assert serial.best == parallel.best

    def test_unknown_strategy(self):
        with pytest.raises(ScheduleError, match="strategy"):
            tune_kernel("matmul", (4, 4, 4), strategy="magic")

    def test_cluster_axis_tunes_cores(self):
        result = tune_kernel("sum", (16, 16), core_counts=(1, 4))
        assert result.best.config.num_cores == 4
        assert result.best.cycles < result.default_cycles

    def test_tuned_winner_passes_differential(self):
        """Tuned asm runs identically on both engines and matches
        numpy — the tuner's oracle is the differential-tested one."""
        result = tune_kernel("matmul", (1, 16, 64))
        best = result.best
        module, spec = kernels.matmul(1, 16, 64)
        compiled = Compiler(best.pipeline_spec).compile(module)
        arguments = spec.random_arguments(seed=0)
        traces = []
        finals = []
        for reference in (False, True):
            memory = TCDM()
            int_args = {}
            placements = []
            for index, argument in enumerate(arguments):
                base = memory.allocate(argument.nbytes)
                memory.write_array(base, argument)
                int_args[f"a{index}"] = base
                placements.append((base, argument))
            machine = SnitchMachine(compiled.program, memory)
            runner = (
                machine.run_reference if reference else machine.run
            )
            traces.append(runner(compiled.entry, int_args=int_args))
            finals.append(
                [
                    memory.read_array(base, a.shape, a.dtype)
                    for base, a in placements
                ]
            )
        assert traces[0].cycles == traces[1].cycles == best.cycles
        for fast, ref in zip(finals[0], finals[1]):
            np.testing.assert_array_equal(fast, ref)
        expected = spec.reference(*arguments)
        np.testing.assert_allclose(
            finals[0][2], expected[2], atol=1e-8
        )


class TestCache:
    def test_second_run_is_all_hits(self, tmp_path):
        path = tmp_path / "cache.json"
        first = tune_kernel("matmul", (4, 4, 4), cache=path)
        assert first.cache_misses == 4 and first.cache_hits == 0
        second = tune_kernel("matmul", (4, 4, 4), cache=path)
        assert second.cache_hits == 4 and second.cache_misses == 0
        assert second.best.cycles == first.best.cycles

    def test_key_includes_engine_version(self):
        key = TuneCache.key("matmul", (4, 4, 4), ScheduleConfig())
        assert f"engine={ENGINE_VERSION}" in key
        stale = TuneCache.key(
            "matmul", (4, 4, 4), ScheduleConfig(), engine_version=999
        )
        assert stale != key

    def test_corrupt_file_is_quarantined(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            cache = TuneCache(path)
        assert len(cache) == 0
        # The corrupt bytes survive for inspection...
        corrupt = path.with_suffix(".json.corrupt")
        assert corrupt.read_text() == "{not json"
        result = tune_kernel("matmul", (4, 4, 4), cache=cache)
        assert result.cache_misses == 4
        # ...and a clean save replaced the store.
        assert json.loads(path.read_text())["schema"] == TuneCache.SCHEMA

    def test_in_memory_deduplicates_within_a_run(self):
        cache = TuneCache()
        tune_kernel("matmul", (4, 4, 4), cache=cache)
        result = tune_kernel("matmul", (4, 4, 4), cache=cache)
        assert result.cache_hits == 4

    def test_failures_are_cached(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = TuneCache(path)
        key = TuneCache.key("matmul", (4, 4, 4), ScheduleConfig())
        cache.put(key, None)
        cache.save()
        reopened = TuneCache(path)
        hit, cycles, fault = reopened.lookup(key)
        assert hit and cycles is None
        # Schema 2 never stores a bare null: the failure is structured.
        assert fault is not None and fault.kind == "unknown"


class TestTunedSchedule:
    def test_json_round_trip(self, tmp_path):
        result = tune_kernel("matmul", (1, 16, 64))
        path = tmp_path / "schedules.json"
        save_schedules(path, [result.best])
        (loaded,) = load_schedules(path)
        assert loaded == result.best
        assert loaded.speedup >= 1.0

    def test_malformed_artifact(self, tmp_path):
        path = tmp_path / "schedules.json"
        path.write_text('{"schema": 1, "schedules": [{"kernel": "x"}]}')
        with pytest.raises(ScheduleError, match="malformed"):
            load_schedules(path)

    def test_multicore_schedule_rejected_by_schedule_table(self):
        """A cluster-tuned schedule's cycles are unreachable through a
        pipeline spec, so applying it to single-core network layers
        must fail loudly instead of silently running the default."""
        result = tune_kernel("sum", (16, 16), core_counts=(1, 4))
        assert result.best.config.num_cores == 4
        # The spec itself only encodes the compile-time schedule...
        assert (
            result.best.pipeline_spec
            == ScheduleConfig(
                permutation=result.best.config.permutation,
                unroll_factor=result.best.config.unroll_factor,
            ).pipeline_spec()
        )
        # ...so schedule_table refuses it.
        with pytest.raises(ScheduleError, match="cores"):
            schedule_table([result.best])
        # And the report says so.
        assert "4 cores" in result.report()

    def test_networks_apply_tuned_schedules(self):
        """A tuned per-layer schedule drops whole-network cycles."""
        layers = [
            networks.LayerConfig("fc", kernels.matmul, (1, 16, 64)),
            networks.LayerConfig("act", kernels.relu, (1, 64)),
        ]
        result = tune_kernel("matmul", (1, 16, 64))
        table = schedule_table([result.best])
        assert ("matmul", (1, 16, 64)) in table
        default_run = networks.run_network("mini", layers)
        tuned_run = networks.run_network(
            "mini", layers, schedules=table
        )
        assert (
            tuned_run.total_cycles < default_run.total_cycles
        )


class TestTunerCLI:
    def test_report_output(self, capsys, tmp_path):
        assert (
            kernel_tuner.main(
                [
                    "matmul", "4", "4", "4",
                    "--cache", str(tmp_path / "c.json"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "4 candidates" in out
        assert "winning spec:" in out

    def test_emit_spec_round_trips(self, capsys, tmp_path):
        assert (
            kernel_tuner.main(
                ["matmul", "1", "16", "64", "--emit-spec", "--no-cache"]
            )
            == 0
        )
        spec = capsys.readouterr().out.strip()
        module, kspec = kernels.matmul(1, 16, 64)
        compiled = api.compile_linalg(module, pipeline=spec)
        run = api.run_kernel(
            compiled, kspec.random_arguments(seed=0)
        )
        result = tune_kernel("matmul", (1, 16, 64))
        assert run.trace.cycles == result.best.cycles

    def test_save_artifact(self, capsys, tmp_path):
        artifact = tmp_path / "schedules.json"
        kernel_tuner.main(
            [
                "matmul", "4", "4", "4",
                "--no-cache", "--save", str(artifact),
            ]
        )
        (loaded,) = load_schedules(artifact)
        assert loaded.kernel == "matmul"
        # Saving again replaces (not duplicates) the entry.
        kernel_tuner.main(
            [
                "matmul", "4", "4", "4",
                "--no-cache", "--save", str(artifact),
            ]
        )
        assert len(load_schedules(artifact)) == 1

    def test_list_space(self, capsys):
        assert (
            kernel_tuner.main(["matmul", "4", "4", "4", "--list-space"])
            == 0
        )
        out = capsys.readouterr().out
        assert "4 legal configs" in out

    def test_bad_cores(self):
        with pytest.raises(SystemExit):
            kernel_tuner.main(["matmul", "4", "4", "4", "--cores", "x"])


class TestTunedScheduleRecord:
    def test_engine_version_recorded(self):
        result = tune_kernel("matmul", (4, 4, 4))
        assert result.best.engine_version == ENGINE_VERSION
