"""Property tests: printer/parser round-trips over generated IR."""

from hypothesis import given, settings, strategies as st

from repro.dialects import arith, builtin, func
from repro.ir import (
    AffineConstantExpr,
    AffineDimExpr,
    AffineMap,
    ArrayAttr,
    Block,
    DenseIntAttr,
    FloatAttr,
    IntAttr,
    MemRefType,
    Parser,
    Region,
    StringAttr,
    f32,
    f64,
    parse_op,
    print_op,
    verify,
)

# -- attribute strategies -----------------------------------------------------

int_attrs = st.integers(-10**6, 10**6).map(IntAttr)
float_attrs = st.floats(
    allow_nan=False,
    allow_infinity=False,
    min_value=-1e6,
    max_value=1e6,
).map(lambda v: FloatAttr(v, f64))
string_attrs = st.text(
    alphabet="abcdefgh_123", min_size=0, max_size=8
).map(StringAttr)
dense_attrs = st.lists(
    st.integers(-1000, 1000), min_size=1, max_size=5
).map(DenseIntAttr)


def affine_maps():
    def build(num_dims, parts):
        expr = AffineConstantExpr(0)
        for pick, coeff in parts:
            expr = expr + AffineDimExpr(pick % num_dims) * coeff
        return AffineMap(num_dims, (expr,))

    return st.builds(
        build,
        st.integers(1, 4),
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 50)),
            min_size=1,
            max_size=3,
        ),
    )


simple_attrs = st.one_of(
    int_attrs, float_attrs, string_attrs, dense_attrs, affine_maps()
)
attrs = st.one_of(
    simple_attrs,
    st.lists(string_attrs, min_size=1, max_size=3).map(ArrayAttr),
)


@settings(max_examples=80, deadline=None)
@given(attr=attrs)
def test_attribute_str_parse_roundtrip(attr):
    parsed = Parser(str(attr)).parse_attribute()
    assert parsed == attr


@settings(max_examples=40, deadline=None)
@given(
    shape=st.lists(st.integers(1, 64), min_size=0, max_size=3),
    wide=st.booleans(),
)
def test_memref_type_roundtrip(shape, wide):
    t = MemRefType(f64 if wide else f32, shape)
    assert Parser(str(t)).parse_type() == t


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(
        st.floats(
            allow_nan=False,
            allow_infinity=False,
            min_value=-100,
            max_value=100,
        ),
        min_size=1,
        max_size=6,
    )
)
def test_module_roundtrip_with_arith_chain(values):
    """Random constant/add chains survive print -> parse -> print."""
    block_ops = []
    ssa = []
    for v in values:
        c = arith.ConstantOp.from_float(v, f64)
        block_ops.append(c)
        ssa.append(c.result)
    for i in range(len(ssa) - 1):
        add = arith.AddfOp(ssa[i], ssa[i + 1])
        block_ops.append(add)
        ssa.append(add.result)
    module = builtin.ModuleOp(block_ops)
    text = print_op(module)
    parsed = parse_op(text)
    verify(parsed)
    assert print_op(parsed) == text


@settings(max_examples=20, deadline=None)
@given(
    num_args=st.integers(0, 3),
    name=st.text(alphabet="abcxyz", min_size=1, max_size=6),
)
def test_function_roundtrip(num_args, name):
    fn = func.FuncOp(name, [f64] * num_args)
    fn.entry_block.add_op(func.ReturnOp())
    module = builtin.ModuleOp([fn])
    text = print_op(module)
    parsed = parse_op(text)
    assert print_op(parsed) == text
