"""Unit tests for attributes and types."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import (
    ArrayAttr,
    BoolAttr,
    DenseIntAttr,
    FloatAttr,
    FloatType,
    FunctionType,
    IntAttr,
    IntegerType,
    MemRefType,
    StringAttr,
    SymbolRefAttr,
    f32,
    f64,
    i32,
    index,
)


class TestScalarTypes:
    def test_integer_type_str(self):
        assert str(IntegerType(32)) == "i32"
        assert str(IntegerType(1)) == "i1"

    def test_float_type_str(self):
        assert str(f64) == "f64"
        assert str(f32) == "f32"

    def test_index_type_str(self):
        assert str(index) == "index"

    def test_float_byte_width(self):
        assert f64.byte_width == 8
        assert f32.byte_width == 4

    def test_equality_and_hash(self):
        assert IntegerType(32) == i32
        assert hash(FloatType(64)) == hash(f64)
        assert f64 != f32

    def test_types_usable_as_dict_keys(self):
        table = {f64: "double", f32: "single"}
        assert table[FloatType(64)] == "double"


class TestDataAttributes:
    def test_int_attr(self):
        assert IntAttr(7).value == 7
        assert str(IntAttr(-3)) == "-3"

    def test_bool_attr_str(self):
        assert str(BoolAttr(True)) == "true"
        assert str(BoolAttr(False)) == "false"

    def test_float_attr_carries_type(self):
        attr = FloatAttr(1.5, f32)
        assert attr.value == 1.5
        assert attr.type == f32

    def test_string_attr(self):
        assert StringAttr("hello").value == "hello"
        assert str(StringAttr("x")) == '"x"'

    def test_symbol_ref(self):
        assert str(SymbolRefAttr("matmul")) == "@matmul"

    def test_array_attr_iteration(self):
        arr = ArrayAttr([IntAttr(1), IntAttr(2)])
        assert len(arr) == 2
        assert [a.value for a in arr] == [1, 2]
        assert arr[1] == IntAttr(2)

    def test_array_attr_equality(self):
        assert ArrayAttr([IntAttr(1)]) == ArrayAttr([IntAttr(1)])

    def test_dense_int_attr(self):
        dense = DenseIntAttr([3, 4, 5])
        assert list(dense) == [3, 4, 5]
        assert dense[0] == 3
        assert len(dense) == 3
        assert str(dense) == "[3, 4, 5]"

    @given(st.lists(st.integers(-1000, 1000), max_size=8))
    def test_dense_int_roundtrip(self, values):
        dense = DenseIntAttr(values)
        assert list(dense) == values
        assert DenseIntAttr(values) == dense


class TestMemRefType:
    def test_str(self):
        assert str(MemRefType(f64, (5, 200))) == "memref<5x200xf64>"
        assert str(MemRefType(f64, ())) == "memref<f64>"

    def test_rank_and_count(self):
        t = MemRefType(f64, (5, 200))
        assert t.rank == 2
        assert t.element_count == 1000
        assert t.byte_size == 8000

    def test_row_major_strides(self):
        t = MemRefType(f64, (5, 200))
        assert t.strides() == (200, 1)
        assert t.byte_strides() == (1600, 8)

    def test_strides_3d(self):
        t = MemRefType(f32, (2, 3, 4))
        assert t.strides() == (12, 4, 1)
        assert t.byte_strides() == (48, 16, 4)

    def test_scalar_memref(self):
        t = MemRefType(f64, ())
        assert t.rank == 0
        assert t.element_count == 1
        assert t.strides() == ()

    def test_element_byte_width_f32(self):
        assert MemRefType(f32, (4,)).element_byte_width == 4

    @given(
        st.lists(st.integers(1, 16), min_size=1, max_size=4)
    )
    def test_stride_invariant(self, shape):
        """Row-major invariant: stride[i] == stride[i+1] * shape[i+1]."""
        t = MemRefType(f64, shape)
        strides = t.strides()
        for i in range(len(shape) - 1):
            assert strides[i] == strides[i + 1] * shape[i + 1]
        assert strides[-1] == 1


class TestFunctionType:
    def test_construction(self):
        ft = FunctionType([f64, f64], [f64])
        assert ft.inputs == (f64, f64)
        assert ft.results == (f64,)

    def test_str(self):
        assert str(FunctionType([f64], [])) == "(f64) -> ()"
