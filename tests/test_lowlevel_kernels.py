"""Tests for the handwritten dialect-level kernels (paper Section 4.2)."""

import numpy as np
import pytest

from repro import api
from repro.kernels import lowlevel


def run(builder, sizes, seed=11):
    module, spec = builder(*sizes)
    compiled = api.compile_lowlevel(module, spec.name)
    args = spec.random_arguments(seed=seed)
    result = api.run_kernel(compiled, args)
    expected = spec.reference(*args)
    return spec, compiled, result, expected


class TestSum32:
    def test_correct(self):
        _, _, result, expected = run(lowlevel.lowlevel_sum_f32, (4, 8))
        np.testing.assert_allclose(
            result.arrays[2], expected[2], rtol=1e-6
        )

    def test_packed_throughput(self):
        """Two f32 per vfadd: FLOPs above one per cycle at size."""
        _, _, result, _ = run(lowlevel.lowlevel_sum_f32, (16, 40))
        assert result.trace.throughput > 1.5

    def test_odd_element_count_rejected(self):
        with pytest.raises(ValueError):
            lowlevel.lowlevel_sum_f32(3, 3)


class TestRelu32:
    def test_correct_with_negatives(self):
        _, _, result, expected = run(lowlevel.lowlevel_relu_f32, (4, 8))
        np.testing.assert_allclose(
            result.arrays[1], expected[1], rtol=1e-6
        )
        assert (result.arrays[1] >= 0).all()

    def test_high_utilization(self):
        _, _, result, _ = run(lowlevel.lowlevel_relu_f32, (16, 40))
        assert result.trace.fpu_utilization > 0.9


class TestMatMulT32:
    def test_correct(self):
        _, _, result, expected = run(
            lowlevel.lowlevel_matmul_t_f32, (16, 16)
        )
        np.testing.assert_allclose(
            result.arrays[2], expected[2], rtol=1e-4
        )

    def test_throughput_exceeds_scalar_peak(self):
        """Packed SIMD: above the 2 FLOPs/cycle scalar-FMA roofline is
        impossible, but the paper reports 2.45 — we should beat 2."""
        _, _, result, _ = run(lowlevel.lowlevel_matmul_t_f32, (64, 40))
        assert result.trace.throughput > 2.0

    def test_register_usage_matches_paper_shape(self):
        """Paper Table 2: MatMulT 32-bit uses 11 FP / 12 int registers;
        ours must be in that band and within the spill-free budget."""
        _, compiled, _, _ = run(lowlevel.lowlevel_matmul_t_f32, (16, 16))
        fp, integer = compiled.register_usage()
        assert 7 <= fp <= 12
        assert 5 <= integer <= 13

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            lowlevel.lowlevel_matmul_t_f32(5, 16)  # K odd
        with pytest.raises(ValueError):
            lowlevel.lowlevel_matmul_t_f32(16, 6)  # N not /4


class TestFill64:
    def test_correct(self):
        _, _, result, _ = run(lowlevel.lowlevel_fill_f64, (4, 10))
        module, spec = lowlevel.lowlevel_fill_f64(4, 10)
        compiled = api.compile_lowlevel(module, spec.name)
        out = api.run_kernel(compiled, [1.25, np.zeros((4, 10))])
        np.testing.assert_array_equal(
            out.arrays[1], np.full((4, 10), 1.25)
        )

    def test_one_instruction_per_element(self):
        _, _, result, _ = run(lowlevel.lowlevel_fill_f64, (8, 20))
        # one streamed fmv per element plus the argument copy
        assert result.trace.fpu_instructions == 8 * 20 + 1
