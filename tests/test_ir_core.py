"""Unit tests for the SSA core: operations, blocks, regions, use-def."""

import pytest

from repro.ir import (
    Block,
    BlockArgument,
    IRError,
    Operation,
    OpResult,
    Region,
    f64,
    single_block_region,
)


def make_op(operands=(), results=0):
    return Operation(
        operands=list(operands), result_types=[f64] * results
    )


class TestUseDef:
    def test_result_identity(self):
        op = make_op(results=2)
        assert isinstance(op.results[0], OpResult)
        assert op.results[0].op is op
        assert op.results[1].index == 1

    def test_operand_records_use(self):
        producer = make_op(results=1)
        consumer = make_op(operands=[producer.results[0]])
        assert producer.results[0].has_uses
        assert consumer in producer.results[0].users

    def test_multiple_uses(self):
        producer = make_op(results=1)
        value = producer.results[0]
        make_op(operands=[value, value])
        assert len(value.uses) == 2

    def test_set_operand_moves_use(self):
        a = make_op(results=1)
        b = make_op(results=1)
        consumer = make_op(operands=[a.results[0]])
        consumer.set_operand(0, b.results[0])
        assert not a.results[0].has_uses
        assert b.results[0].has_uses
        assert consumer.operands[0] is b.results[0]

    def test_replace_all_uses_with(self):
        a = make_op(results=1)
        b = make_op(results=1)
        c1 = make_op(operands=[a.results[0]])
        c2 = make_op(operands=[a.results[0], a.results[0]])
        a.results[0].replace_all_uses_with(b.results[0])
        assert not a.results[0].has_uses
        assert len(b.results[0].uses) == 3
        assert c1.operands[0] is b.results[0]
        assert all(v is b.results[0] for v in c2.operands)

    def test_rauw_self_is_noop(self):
        a = make_op(results=1)
        make_op(operands=[a.results[0]])
        a.results[0].replace_all_uses_with(a.results[0])
        assert len(a.results[0].uses) == 1

    def test_non_ssa_operand_rejected(self):
        with pytest.raises(IRError):
            Operation(operands=["not a value"])


class TestBlocks:
    def test_add_and_order(self):
        block = Block()
        a, b = make_op(), make_op()
        block.add_ops([a, b])
        assert block.ops == (a, b)
        assert block.first_op is a
        assert block.last_op is b

    def test_block_args(self):
        block = Block([f64, f64])
        assert len(block.args) == 2
        assert isinstance(block.args[0], BlockArgument)
        assert block.args[1].index == 1
        assert block.args[0].block is block

    def test_insert_before_after(self):
        block = Block()
        a, c = make_op(), make_op()
        block.add_ops([a, c])
        b = make_op()
        block.insert_op_before(b, c)
        assert block.ops == (a, b, c)
        d = make_op()
        block.insert_op_after(d, c)
        assert block.ops == (a, b, c, d)

    def test_double_attach_rejected(self):
        block1, block2 = Block(), Block()
        op = make_op()
        block1.add_op(op)
        with pytest.raises(IRError):
            block2.add_op(op)

    def test_index_of_missing(self):
        block = Block()
        with pytest.raises(IRError):
            block.index_of(make_op())

    def test_add_arg(self):
        block = Block()
        arg = block.add_arg(f64, "acc")
        assert arg.name_hint == "acc"
        assert block.args == [arg]


class TestRegionsAndNesting:
    def test_single_block_region(self):
        op = make_op()
        region = single_block_region([op])
        assert region.block.ops == (op,)

    def test_parent_chain(self):
        inner = make_op()
        parent = Operation(regions=[single_block_region([inner])])
        assert inner.parent_op is parent
        assert inner.parent_block is parent.body.block

    def test_parent_of_type(self):
        class Outer(Operation):
            name = "test.outer"

        inner = make_op()
        mid = Operation(regions=[single_block_region([inner])])
        outer = Outer(regions=[single_block_region([mid])])
        assert inner.parent_of_type(Outer) is outer
        assert inner.parent_of_type(Block) is None

    def test_is_ancestor_of(self):
        inner = make_op()
        outer = Operation(regions=[single_block_region([inner])])
        assert outer.is_ancestor_of(inner)
        assert not inner.is_ancestor_of(outer)

    def test_walk_preorder(self):
        inner = make_op()
        mid = Operation(regions=[single_block_region([inner])])
        sibling = make_op()
        top = Operation(
            regions=[single_block_region([mid, sibling])]
        )
        assert list(top.walk()) == [top, mid, inner, sibling]

    def test_region_double_attach(self):
        region = Region([Block()])
        Operation(regions=[region])
        with pytest.raises(IRError):
            Operation(regions=[region])

    def test_body_requires_single_region(self):
        op = make_op()
        with pytest.raises(IRError):
            op.body


class TestErasure:
    def test_erase_drops_uses(self):
        producer = make_op(results=1)
        block = Block()
        consumer = make_op(operands=[producer.results[0]])
        block.add_op(consumer)
        consumer.erase()
        assert not producer.results[0].has_uses

    def test_erase_with_live_uses_rejected(self):
        producer = make_op(results=1)
        block = Block()
        block.add_op(producer)
        make_op(operands=[producer.results[0]])
        with pytest.raises(IRError):
            producer.erase()

    def test_erase_nested_drops_inner_uses(self):
        producer = make_op(results=1)
        inner = make_op(operands=[producer.results[0]])
        outer = Operation(regions=[single_block_region([inner])])
        block = Block()
        block.add_op(outer)
        outer.erase()
        assert not producer.results[0].has_uses

    def test_detach_keeps_uses(self):
        producer = make_op(results=1)
        block = Block()
        consumer = make_op(operands=[producer.results[0]])
        block.add_op(consumer)
        consumer.detach()
        assert consumer.parent is None
        assert producer.results[0].has_uses
