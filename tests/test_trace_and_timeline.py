"""Tests for the performance counters and the instruction timeline."""

import numpy as np
import pytest

from repro.snitch import SnitchMachine, TCDM, assemble
from repro.snitch.machine import format_timeline
from repro.snitch.trace import ExecutionTrace


class TestExecutionTrace:
    def test_derived_metrics(self):
        trace = ExecutionTrace(
            cycles=200, fpu_arith_cycles=100, flops=150
        )
        assert trace.fpu_utilization == 0.5
        assert trace.throughput == 0.75
        assert trace.occupancy_percent() == 50.0

    def test_zero_cycles_safe(self):
        trace = ExecutionTrace()
        assert trace.fpu_utilization == 0.0
        assert trace.throughput == 0.0

    def test_histogram_recording(self):
        trace = ExecutionTrace()
        trace.record("fadd.d")
        trace.record("fadd.d")
        trace.record("li")
        assert trace.histogram == {"fadd.d": 2, "li": 1}

    def test_summary_mentions_key_metrics(self):
        trace = ExecutionTrace(cycles=10, fpu_arith_cycles=5, flops=5)
        text = trace.summary()
        assert "cycles=10" in text and "util=50.0%" in text


class TestTimeline:
    def _machine(self, asm, record=True):
        program = assemble("main:\n" + asm + "\nret")
        return SnitchMachine(program, record_timeline=record)

    def test_disabled_by_default(self):
        machine = self._machine("li t0, 1", record=False)
        machine.run("main")
        assert machine.timeline == []

    def test_records_issue_cycles(self):
        machine = self._machine("li t0, 1\nli t1, 2\nadd t2, t0, t1")
        machine.run("main")
        cycles = [cycle for cycle, _, _ in machine.timeline]
        assert cycles == [0, 1, 2]
        units = {unit for _, unit, _ in machine.timeline}
        assert units == {"int"}

    def test_fpu_issue_separate_unit(self):
        machine = self._machine(
            "fadd.d fa0, fa1, fa2\nfadd.d fa3, fa1, fa2"
        )
        machine.run("main")
        fpu_rows = [r for r in machine.timeline if r[1] == "fpu"]
        assert len(fpu_rows) == 2

    def test_frep_body_replay_visible(self):
        machine = self._machine(
            "li t0, 2\nfrep.o t0, 1, 0, 0\nfadd.d fa0, fa1, fa2"
        )
        machine.run("main")
        fadds = [r for r in machine.timeline if "fadd.d" in r[2]]
        assert len(fadds) == 3  # replayed 3 times by the sequencer

    def test_raw_stall_visible_in_timeline(self):
        machine = self._machine(
            "fadd.d fa0, fa0, fa1\nfadd.d fa0, fa0, fa1"
        )
        machine.run("main")
        first, second = [r for r in machine.timeline if r[1] == "fpu"]
        from repro.snitch.machine import FP_LATENCY

        assert second[0] - first[0] == FP_LATENCY

    def test_format_timeline(self):
        machine = self._machine("li t0, 1\nfadd.d fa0, fa1, fa2")
        machine.run("main")
        text = format_timeline(machine)
        assert "int" in text and "fpu" in text
        assert "li t0, 1" in text

    def test_format_limit(self):
        machine = self._machine("li t0, 1\nli t1, 1\nli t2, 1")
        machine.run("main")
        assert len(format_timeline(machine, limit=2).splitlines()) == 2
