"""Tests for the Snitch machine model: semantics and timing."""

import numpy as np
import pytest

from repro.snitch import SnitchMachine, SimulationError, TCDM, assemble
from repro.snitch.isa import scfg_address
from repro.snitch.machine import (
    BRANCH_TAKEN_PENALTY,
    FP_LATENCY,
    bits_to_f64,
    f64_to_bits,
    pack_f32x2,
    unpack_f32x2,
)


def run(asm, int_args=None, float_args=None, memory=None):
    program = assemble("main:\n" + asm + "\nret")
    machine = SnitchMachine(program, memory)
    trace = machine.run("main", int_args=int_args, float_args=float_args)
    return machine, trace


class TestBitHelpers:
    def test_f64_roundtrip(self):
        for v in (0.0, 1.5, -2.25, 1e300):
            assert bits_to_f64(f64_to_bits(v)) == v

    def test_f32_pack_unpack(self):
        bits = pack_f32x2(1.5, -2.0)
        assert unpack_f32x2(bits) == (1.5, -2.0)


class TestIntegerSemantics:
    def test_li_add_sub_mul(self):
        m, _ = run("li t0, 6\nli t1, 7\nmul t2, t0, t1\nadd t3, t2, t0\nsub t4, t3, t1")
        assert m.read_int("t2") == 42
        assert m.read_int("t3") == 48
        assert m.read_int("t4") == 41

    def test_slli(self):
        m, _ = run("li t0, 3\nslli t1, t0, 4")
        assert m.read_int("t1") == 48

    def test_zero_register_immutable(self):
        m, _ = run("li t0, 5\nadd zero, t0, t0")
        assert m.read_int("zero") == 0

    def test_lw_sw(self):
        mem = TCDM()
        addr = mem.allocate(8)
        m, t = run(
            f"li t0, {addr}\nli t1, 123\nsw t1, 0(t0)\nlw t2, 0(t0)",
            memory=mem,
        )
        assert m.read_int("t2") == 123
        assert t.loads == 1 and t.stores == 1

    def test_branches(self):
        m, _ = run(
            """
            li t0, 3
            li t1, 0
        loop:
            addi t1, t1, 2
            addi t0, t0, -1
            bnez t0, loop
            """
        )
        assert m.read_int("t1") == 6

    def test_beq_bne_blt_bge(self):
        m, _ = run(
            """
            li t0, 1
            li t1, 2
            li t2, 0
            blt t1, t0, skip
            li t2, 7
        skip:
            """
        )
        assert m.read_int("t2") == 7


class TestFloatSemantics:
    def test_fp_arith(self):
        mem = TCDM()
        a = mem.allocate(8)
        mem.store_f64(a, 0.0)
        m, _ = run(
            f"li t0, {a}\nfsd fa0, 0(t0)\nfld fa1, 0(t0)\nfadd.d fa2, fa1, fa1",
            float_args={"fa0": 2.5},
            memory=mem,
        )
        assert bits_to_f64(m.read_float_bits("fa2")) == 5.0

    def test_fmadd(self):
        m, _ = run(
            "fmadd.d fa3, fa0, fa1, fa2",
            float_args={"fa0": 2.0, "fa1": 3.0, "fa2": 1.0},
        )
        assert bits_to_f64(m.read_float_bits("fa3")) == 7.0

    def test_fmax_fmin(self):
        m, _ = run(
            "fmax.d fa2, fa0, fa1\nfmin.d fa3, fa0, fa1",
            float_args={"fa0": -1.0, "fa1": 3.0},
        )
        assert bits_to_f64(m.read_float_bits("fa2")) == 3.0
        assert bits_to_f64(m.read_float_bits("fa3")) == -1.0

    def test_fcvt_from_zero(self):
        m, _ = run("fcvt.d.w fa0, zero")
        assert bits_to_f64(m.read_float_bits("fa0")) == 0.0

    def test_fcvt_from_int(self):
        m, _ = run("li t0, -7\nfcvt.d.w fa0, t0")
        assert bits_to_f64(m.read_float_bits("fa0")) == -7.0

    def test_packed_simd(self):
        m, _ = run(
            "vfadd.s fa2, fa0, fa1\nvfmul.s fa3, fa0, fa1",
        )
        # seed packed registers directly
        m2 = SnitchMachine(assemble("main:\nvfadd.s fa2, fa0, fa1\nret"))
        m2.write_float_bits("fa0", pack_f32x2(1.0, 2.0))
        m2.write_float_bits("fa1", pack_f32x2(10.0, 20.0))
        m2.run("main")
        assert unpack_f32x2(m2.read_float_bits("fa2")) == (11.0, 22.0)

    def test_vfmac_accumulates(self):
        m = SnitchMachine(assemble("main:\nvfmac.s fa2, fa0, fa1\nret"))
        m.write_float_bits("fa0", pack_f32x2(2.0, 3.0))
        m.write_float_bits("fa1", pack_f32x2(5.0, 7.0))
        m.write_float_bits("fa2", pack_f32x2(1.0, 1.0))
        m.run("main")
        assert unpack_f32x2(m.read_float_bits("fa2")) == (11.0, 22.0)

    def test_vfsum_reduces_lanes(self):
        m = SnitchMachine(assemble("main:\nvfsum.s fa1, fa0\nret"))
        m.write_float_bits("fa0", pack_f32x2(2.0, 3.0))
        m.write_float_bits("fa1", pack_f32x2(1.0, 9.0))
        m.run("main")
        lane0, lane1 = unpack_f32x2(m.read_float_bits("fa1"))
        assert lane0 == 6.0  # 1 + 2 + 3
        assert lane1 == 9.0  # untouched

    def test_vfcpka_packs(self):
        m = SnitchMachine(assemble("main:\nvfcpka.s.s fa2, fa0, fa1\nret"))
        m.write_float_bits("fa0", pack_f32x2(1.5, 0.0))
        m.write_float_bits("fa1", pack_f32x2(2.5, 0.0))
        m.run("main")
        assert unpack_f32x2(m.read_float_bits("fa2")) == (1.5, 2.5)


class TestTiming:
    def test_int_ops_single_cycle(self):
        _, t = run("li t0, 1\nli t1, 2\nadd t2, t0, t1")
        assert t.cycles == 3

    def test_fp_raw_stall(self):
        """A dependent FP chain issues one op per FP_LATENCY cycles."""
        _, t_chain = run(
            "\n".join(["fadd.d fa0, fa0, fa0"] * 4),
            float_args={"fa0": 1.0},
        )
        _, t_indep = run(
            "\n".join(
                f"fadd.d fa{i}, fa4, fa5" for i in range(4)
            ),
            float_args={"fa4": 1.0, "fa5": 1.0},
        )
        assert t_chain.cycles > t_indep.cycles
        assert t_chain.fpu_stall_cycles >= 3 * (FP_LATENCY - 1)

    def test_branch_taken_penalty(self):
        _, taken = run("li t0, 1\nbnez t0, out\nout:")
        _, not_taken = run("li t0, 0\nbnez t0, out\nout:")
        assert taken.cycles == not_taken.cycles + BRANCH_TAKEN_PENALTY

    def test_frep_pseudo_dual_issue(self):
        """Integer work proceeds while the FPU replays the FREP body."""
        asm_frep = """
            li t0, 99
            frep.o t0, 1, 0, 0
            fadd.d fa0, fa1, fa2
            li t1, 1
            li t2, 2
            li t3, 3
        """
        _, t = run(asm_frep, float_args={"fa1": 1.0, "fa2": 2.0})
        # 100 FPU cycles dominate; the integer lis hide underneath.
        assert t.cycles <= 100 + 8
        assert t.fpu_arith_cycles == 100

    def test_fpu_utilization_definition(self):
        _, t = run(
            "li t0, 9\nfrep.o t0, 1, 0, 0\nfadd.d fa0, fa1, fa2",
            float_args={"fa1": 1.0, "fa2": 1.0},
        )
        assert t.fpu_utilization == t.fpu_arith_cycles / t.cycles

    def test_fma_counts_two_flops(self):
        _, t = run(
            "fmadd.d fa0, fa1, fa2, fa3",
            float_args={"fa1": 1.0, "fa2": 1.0, "fa3": 0.0},
        )
        assert t.flops == 2
        assert t.fmadd == 1


class TestSSR:
    def _stream_sum(self, n):
        x = np.arange(n, dtype=np.float64)
        mem = TCDM()
        base = mem.allocate(n * 8)
        mem.write_array(base, x)
        asm = f"""
            li t0, {n - 1}
            scfgwi t0, {scfg_address(0, 0)}
            li t0, 8
            scfgwi t0, {scfg_address(0, 8)}
            li t0, 0
            scfgwi t0, {scfg_address(0, 16)}
            scfgwi a0, {scfg_address(0, 24)}
            csrsi ssrcfg, 1
            fcvt.d.w fa0, zero
            li t1, {n - 1}
            frep.o t1, 1, 0, 0
            fadd.d fa0, fa0, ft0
            csrci ssrcfg, 1
        """
        m, t = run(asm, int_args={"a0": base}, memory=mem)
        return m, t, x

    def test_stream_read_values(self):
        m, t, x = self._stream_sum(16)
        assert bits_to_f64(m.read_float_bits("fa0")) == x.sum()
        assert t.ssr_reads == 16
        assert t.loads == 0  # SSR reads are not explicit loads

    def test_repeat_serves_elements_multiple_times(self):
        mem = TCDM()
        base = mem.allocate(16)
        mem.write_array(base, np.array([3.0, 5.0]))
        asm = f"""
            li t0, 1
            scfgwi t0, {scfg_address(0, 0)}
            li t0, 8
            scfgwi t0, {scfg_address(0, 8)}
            li t0, 1
            scfgwi t0, {scfg_address(0, 16)}   # repeat = 2
            scfgwi a0, {scfg_address(0, 24)}
            csrsi ssrcfg, 1
            fcvt.d.w fa0, zero
            li t1, 3
            frep.o t1, 1, 0, 0
            fadd.d fa0, fa0, ft0
            csrci ssrcfg, 1
        """
        m, _ = run(asm, int_args={"a0": base}, memory=mem)
        # 3 + 3 + 5 + 5
        assert bits_to_f64(m.read_float_bits("fa0")) == 16.0

    def test_write_stream(self):
        mem = TCDM()
        base = mem.allocate(4 * 8)
        asm = f"""
            li t0, 3
            scfgwi t0, {scfg_address(0, 0)}
            li t0, 8
            scfgwi t0, {scfg_address(0, 8)}
            li t0, 0
            scfgwi t0, {scfg_address(0, 16)}
            scfgwi a0, {scfg_address(0, 28)}   # write pointer
            csrsi ssrcfg, 1
            li t1, 3
            frep.o t1, 1, 0, 0
            fmv.d ft0, fa0
            csrci ssrcfg, 1
        """
        m, t = run(
            asm, int_args={"a0": base}, float_args={"fa0": 2.5}, memory=mem
        )
        assert list(mem.read_array(base, (4,), np.float64)) == [2.5] * 4
        assert t.ssr_writes == 4

    def test_read_past_end_raises(self):
        mem = TCDM()
        base = mem.allocate(8)
        mem.store_f64(base, 1.0)
        asm = f"""
            li t0, 0
            scfgwi t0, {scfg_address(0, 0)}
            li t0, 8
            scfgwi t0, {scfg_address(0, 8)}
            li t0, 0
            scfgwi t0, {scfg_address(0, 16)}
            scfgwi a0, {scfg_address(0, 24)}
            csrsi ssrcfg, 1
            fadd.d fa0, ft0, ft0
        """
        with pytest.raises(SimulationError):
            run(asm, int_args={"a0": base}, memory=mem)

    def test_unarmed_read_is_plain_register(self):
        m, _ = run("fadd.d fa0, ft0, ft0")
        assert bits_to_f64(m.read_float_bits("fa0")) == 0.0


class TestGuards:
    def test_infinite_loop_detected(self):
        program = assemble("main:\nloop:\nj loop\nret")
        machine = SnitchMachine(program, max_instructions=1000)
        with pytest.raises(SimulationError):
            machine.run("main")

    def test_frep_illegal_body(self):
        program = assemble("main:\nli t0, 1\nfrep.o t0, 1, 0, 0\nli t1, 2\nret")
        with pytest.raises(SimulationError):
            SnitchMachine(program).run("main")
