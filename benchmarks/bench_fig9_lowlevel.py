"""Figure 9: handwritten dialect-level kernels (paper Section 4.2, RQ1).

Reproduces the FPU-utilization / throughput / cycle-count series for the
Sum, ReLU and MatMulT 32-bit kernels written directly in the
rv/rv_snitch/snitch_stream dialects and compiled with the backend passes
only.
"""

import numpy as np
import pytest

from repro import api
from repro.kernels import lowlevel
from benchmarks.conftest import make_report_fixture

report = make_report_fixture(
    "fig9_lowlevel.txt",
    f"{'kernel':<22} {'cycles':>7} {'util':>6} {'FLOP/cyc':>8} "
    f"{'roofline%':>9}",
)

SIZES = (8, 16, 24, 32, 40)
K_SIZES = (4, 8, 12, 16, 20)


def run_lowlevel(builder, sizes):
    module, spec = builder(*sizes)
    compiled = api.compile_lowlevel(module, spec.name)
    args = spec.random_arguments(seed=0)
    result = api.run_kernel(compiled, args)
    expected = spec.reference(*args)
    for got, want in zip(result.arrays, expected):
        if want is not None:
            np.testing.assert_allclose(got, want, rtol=1e-4)
    return spec, result.trace


def record(benchmark, report, label, builder, sizes, peak_flops_cycle):
    def once():
        return run_lowlevel(builder, sizes)

    spec, trace = benchmark.pedantic(once, rounds=1, iterations=1)
    roofline = 100 * trace.throughput / peak_flops_cycle
    benchmark.extra_info.update(
        cycles=trace.cycles,
        fpu_utilization=round(trace.fpu_utilization, 4),
        throughput=round(trace.throughput, 3),
        roofline_percent=round(roofline, 1),
    )
    report.row(
        f"{label:<22} {trace.cycles:>7} {trace.fpu_utilization:>6.1%} "
        f"{trace.throughput:>8.2f} {roofline:>9.1f}"
    )


@pytest.mark.parametrize("m", SIZES)
def bench_sum32_mx40(benchmark, report, m):
    """Sum Mx40 (f32, packed SIMD: peak 2 FLOPs/cycle)."""
    record(
        benchmark, report, f"sum32 {m}x40",
        lowlevel.lowlevel_sum_f32, (m, 40), 2.0,
    )


@pytest.mark.parametrize("n", SIZES)
def bench_sum32_40xn(benchmark, report, n):
    """Sum 40xN."""
    record(
        benchmark, report, f"sum32 40x{n}",
        lowlevel.lowlevel_sum_f32, (40, n), 2.0,
    )


@pytest.mark.parametrize("m", SIZES)
def bench_relu32_mx40(benchmark, report, m):
    """ReLU Mx40."""
    record(
        benchmark, report, f"relu32 {m}x40",
        lowlevel.lowlevel_relu_f32, (m, 40), 2.0,
    )


@pytest.mark.parametrize("n", SIZES)
def bench_relu32_40xn(benchmark, report, n):
    """ReLU 40xN."""
    record(
        benchmark, report, f"relu32 40x{n}",
        lowlevel.lowlevel_relu_f32, (40, n), 2.0,
    )


@pytest.mark.parametrize("k", K_SIZES)
def bench_matmul_t32_1xk_40xk(benchmark, report, k):
    """MatMulT 1xK * (40xK)^T (vfmac: peak 4 FLOPs/cycle)."""
    record(
        benchmark, report, f"matmul_t32 1x{k} 40x{k}",
        lowlevel.lowlevel_matmul_t_f32, (k, 40), 4.0,
    )


@pytest.mark.parametrize("n", SIZES)
def bench_matmul_t32_1x20_nx20(benchmark, report, n):
    """MatMulT 1x20 * (Nx20)^T."""
    record(
        benchmark, report, f"matmul_t32 1x20 {n}x20",
        lowlevel.lowlevel_matmul_t_f32, (20, n), 4.0,
    )
