"""Network-level benchmark: the paper's motivating workloads.

Not a paper table per se, but the aggregate view its introduction
motivates: the NSNet2 and AlexNet micro-kernel mixes, compiled with the
multi-level backend vs. the general-purpose flows, reported as
end-to-end cycles and cycle-weighted utilization.
"""

import pytest

from repro.kernels import networks
from benchmarks.conftest import make_report_fixture

report = make_report_fixture(
    "networks.txt",
    f"{'network':<10} {'flow':<7} {'cycles':>9} {'mean util':>10} "
    f"{'speedup':>8}",
)

NETWORKS = {
    "NSNet2": networks.nsnet2_layers,
    "AlexNet": networks.alexnet_layers,
}


@pytest.mark.parametrize("name", sorted(NETWORKS))
def bench_network(benchmark, report, name):
    """All layer kernels of one network through all three flows."""

    def once():
        layers = NETWORKS[name]()
        return {
            flow: networks.run_network(name, layers, pipeline=flow)
            for flow in ("ours", "clang", "mlir")
        }

    results = benchmark.pedantic(once, rounds=1, iterations=1)
    ours = results["ours"]
    for flow, outcome in results.items():
        speedup = results["clang"].total_cycles / outcome.total_cycles
        report.row(
            f"{name:<10} {flow:<7} {outcome.total_cycles:>9} "
            f"{outcome.mean_utilization:>10.1%} {speedup:>7.2f}x"
        )
    benchmark.extra_info.update(
        cycles_ours=ours.total_cycles,
        mean_utilization=round(ours.mean_utilization, 4),
        speedup_vs_clang=round(
            results["clang"].total_cycles / ours.total_cycles, 2
        ),
    )
    assert ours.total_cycles < results["mlir"].total_cycles
    assert ours.mean_utilization > 0.7
