"""Figure 10: end-to-end compiler vs. the Clang/MLIR flows (RQ3).

For every kernel, orientation (Mx20 and 20xN) and size, compiles the
linalg-level kernel through the three flows of paper Figure 8 and
measures FPU utilization on the simulated Snitch core.  The paper's
qualitative result: "ours" climbs towards ~90%+ with size while the
general-purpose flows plateau well below 50%.

The compared flows come from ``REPRO_FIG10_FLOWS`` when set — a
``;``-separated list of ``label=pipeline`` entries (a bare ``label``
means the named pipeline of that name), where ``pipeline`` is a named
pipeline or any raw textual pipeline spec.  For example::

    REPRO_FIG10_FLOWS='ours;nofrep=convert-linalg-to-memref-stream,lower-to-snitch{use-frep=false},verify-streams,fuse-fmadd,lower-snitch-stream,canonicalize,dce,allocate-registers,lower-riscv-scf,eliminate-identity-moves'
"""

import os

import numpy as np
import pytest

from repro import api, kernels
from benchmarks.conftest import make_report_fixture


def _parse_flows(text: str) -> dict[str, str]:
    flows = {}
    for entry in text.split(";"):
        entry = entry.strip()
        if not entry:
            continue  # tolerate trailing/duplicate separators
        label, _, pipeline = entry.partition("=")
        if label in flows:
            raise ValueError(
                f"duplicate flow label {label!r} in REPRO_FIG10_FLOWS"
            )
        flows[label] = pipeline or label
    if not flows:
        raise ValueError("REPRO_FIG10_FLOWS names no flows")
    return flows


#: Label -> pipeline name-or-spec compared by this benchmark.
FLOWS = _parse_flows(
    os.environ.get("REPRO_FIG10_FLOWS", "ours;clang;mlir")
)

report = make_report_fixture(
    "fig10_compiler.txt",
    f"{'kernel':<22} "
    + " ".join(f"{label:>6}" for label in FLOWS)
    + "   (FPU util)",
)

SIZES = (4, 8, 12, 16, 20)

KERNELS = {
    "sum": kernels.sum_kernel,
    "fill": kernels.fill,
    "relu": kernels.relu,
    "conv3x3": kernels.conv3x3,
    "max_pool3x3": kernels.max_pool3x3,
    "sum_pool3x3": kernels.sum_pool3x3,
}


def run_flow(builder, shape, pipeline):
    module, spec = builder(*shape)
    compiled = api.compile_linalg(module, pipeline=pipeline)
    args = spec.random_arguments(seed=0)
    result = api.run_kernel(compiled, args)
    expected = spec.reference(*args)
    for got, want in zip(result.arrays, expected):
        if want is not None:
            np.testing.assert_allclose(got, want, atol=1e-9)
    return result.trace


def record(benchmark, report, label, builder, shape):
    def once():
        return {
            flow_label: run_flow(builder, shape, pipeline)
            for flow_label, pipeline in FLOWS.items()
        }

    traces = benchmark.pedantic(once, rounds=1, iterations=1)
    utils = {
        name: trace.fpu_utilization for name, trace in traces.items()
    }
    benchmark.extra_info.update(
        {name: round(value, 4) for name, value in utils.items()}
    )
    first = next(iter(FLOWS))
    benchmark.extra_info[f"cycles_{first}"] = traces[first].cycles
    report.row(
        f"{label:<22} "
        + " ".join(f"{utils[name]:>6.1%}" for name in FLOWS)
    )


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("name", sorted(KERNELS))
def bench_mx20(benchmark, report, name, size):
    """Kernel at Mx20 with M = size."""
    record(
        benchmark, report, f"{name} {size}x20", KERNELS[name], (size, 20)
    )


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("name", sorted(KERNELS))
def bench_20xn(benchmark, report, name, size):
    """Kernel at 20xN with N = size."""
    record(
        benchmark, report, f"{name} 20x{size}", KERNELS[name], (20, size)
    )
