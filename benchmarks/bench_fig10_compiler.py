"""Figure 10: end-to-end compiler vs. the Clang/MLIR flows (RQ3).

For every kernel, orientation (Mx20 and 20xN) and size, compiles the
linalg-level kernel through the three flows of paper Figure 8 and
measures FPU utilization on the simulated Snitch core.  The paper's
qualitative result: "ours" climbs towards ~90%+ with size while the
general-purpose flows plateau well below 50%.
"""

import numpy as np
import pytest

from repro import api, kernels
from benchmarks.conftest import make_report_fixture

report = make_report_fixture(
    "fig10_compiler.txt",
    f"{'kernel':<22} {'ours':>6} {'clang':>6} {'mlir':>6}   (FPU util)",
)

SIZES = (4, 8, 12, 16, 20)

KERNELS = {
    "sum": kernels.sum_kernel,
    "fill": kernels.fill,
    "relu": kernels.relu,
    "conv3x3": kernels.conv3x3,
    "max_pool3x3": kernels.max_pool3x3,
    "sum_pool3x3": kernels.sum_pool3x3,
}


def run_flow(builder, shape, pipeline):
    module, spec = builder(*shape)
    compiled = api.compile_linalg(module, pipeline=pipeline)
    args = spec.random_arguments(seed=0)
    result = api.run_kernel(compiled, args)
    expected = spec.reference(*args)
    for got, want in zip(result.arrays, expected):
        if want is not None:
            np.testing.assert_allclose(got, want, atol=1e-9)
    return result.trace


def record(benchmark, report, label, builder, shape):
    def once():
        return {
            pipeline: run_flow(builder, shape, pipeline)
            for pipeline in ("ours", "clang", "mlir")
        }

    traces = benchmark.pedantic(once, rounds=1, iterations=1)
    utils = {
        name: trace.fpu_utilization for name, trace in traces.items()
    }
    benchmark.extra_info.update(
        {name: round(value, 4) for name, value in utils.items()}
    )
    benchmark.extra_info["cycles_ours"] = traces["ours"].cycles
    report.row(
        f"{label:<22} {utils['ours']:>6.1%} {utils['clang']:>6.1%} "
        f"{utils['mlir']:>6.1%}"
    )


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("name", sorted(KERNELS))
def bench_mx20(benchmark, report, name, size):
    """Kernel at Mx20 with M = size."""
    record(
        benchmark, report, f"{name} {size}x20", KERNELS[name], (size, 20)
    )


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("name", sorted(KERNELS))
def bench_20xn(benchmark, report, name, size):
    """Kernel at 20xN with N = size."""
    record(
        benchmark, report, f"{name} 20x{size}", KERNELS[name], (20, size)
    )
