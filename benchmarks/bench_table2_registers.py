"""Table 2: spill-free register allocation across the kernel suite.

For each kernel (f64 via the compiler, f32 via the handwritten
dialect-level implementations) compiles at the paper's shapes and counts
the distinct FP / integer registers in the final IR.  The paper's claim:
everything fits the 20 FP + 15 integer caller-saved budget, with spares.
"""

import pytest

from repro import api, kernels
from repro.kernels import lowlevel
from benchmarks.conftest import make_report_fixture

report = make_report_fixture(
    "table2_registers.txt",
    f"{'kernel':<18} {'bits':>4} {'shape':>12} {'FP':>6} {'int':>6}",
)

#: (label, precision, builder, shape) rows of paper Table 2.
F64_ROWS = [
    ("fill", kernels.fill, (4, 4)),
    ("relu", kernels.relu, (4, 4)),
    ("sum", kernels.sum_kernel, (4, 4)),
    ("max_pool3x3", kernels.max_pool3x3, (4, 4)),
    ("sum_pool3x3", kernels.sum_pool3x3, (4, 4)),
    ("conv3x3", kernels.conv3x3, (4, 4)),
    ("matmul", kernels.matmul, (4, 16, 8)),
]

F32_ROWS = [
    ("relu32", lowlevel.lowlevel_relu_f32, (4, 8)),
    ("sum32", lowlevel.lowlevel_sum_f32, (4, 8)),
    ("matmul_t32", lowlevel.lowlevel_matmul_t_f32, (16, 16)),
]


def record(benchmark, report, label, bits, compiled, shape):
    fp, integer = compiled.register_usage()
    benchmark.extra_info.update(fp_registers=fp, int_registers=integer)
    shape_text = "x".join(str(s) for s in shape)
    report.row(
        f"{label:<18} {bits:>4} {shape_text:>12} {fp:>4}/20 {integer:>4}/15"
    )
    assert fp <= 20 and integer <= 15  # the spill-free budget


@pytest.mark.parametrize(
    "label,builder,shape", F64_ROWS, ids=[r[0] for r in F64_ROWS]
)
def bench_f64_registers(benchmark, report, label, builder, shape):
    """64-bit kernels through the full compiler pipeline."""

    def compile_once():
        module, _ = builder(*shape)
        return api.compile_linalg(module, pipeline="ours")

    compiled = benchmark.pedantic(compile_once, rounds=1, iterations=1)
    record(benchmark, report, label, 64, compiled, shape)


@pytest.mark.parametrize(
    "label,builder,shape", F32_ROWS, ids=[r[0] for r in F32_ROWS]
)
def bench_f32_registers(benchmark, report, label, builder, shape):
    """32-bit packed-SIMD kernels (handwritten, backend passes only)."""

    def compile_once():
        module, spec = builder(*shape)
        return api.compile_lowlevel(module, spec.name)

    compiled = benchmark.pedantic(compile_once, rounds=1, iterations=1)
    record(benchmark, report, label, 32, compiled, shape)
