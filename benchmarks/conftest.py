"""Shared benchmark helpers.

Every benchmark regenerates one table or figure of the paper's
evaluation (Section 4).  Besides the pytest-benchmark wall-clock timings
(which measure the *simulator*, not Snitch), each benchmark attaches the
paper's metrics — cycles, FLOPs/cycle throughput, FPU utilization,
loads/stores, register counts — via ``benchmark.extra_info`` and appends
rows to a human-readable report under ``results/``.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


class ReportWriter:
    """Accumulates table rows and writes them at module teardown."""

    def __init__(self, name: str, header: str):
        self.name = name
        self.lines = [header, "-" * len(header)]

    def row(self, text: str) -> None:
        self.lines.append(text)

    def flush(self) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, self.name)
        with open(path, "w") as handle:
            handle.write("\n".join(self.lines) + "\n")


def make_report_fixture(filename: str, header: str):
    """A module-scoped fixture yielding a ReportWriter."""

    @pytest.fixture(scope="module")
    def report():
        writer = ReportWriter(filename, header)
        yield writer
        writer.flush()

    return report
