"""Schedule-space autotuning benchmark: default vs. tuned cycles.

Runs the cycle-oracle tuner (``repro.tune``) over

* the Table 1 paper kernels at representative shapes,
* every distinct NSNet2 and AlexNet layer shape (the paper's two
  network kernel mixes), plus whole-network totals with the tuned
  per-layer schedules applied,
* a Figure 11 MatMul sweep subset (M = 1, N/K grid) — the shape
  family whose default unroll heuristic leaves cycles on the table,

and records default/tuned cycles, the winning config, candidates
evaluated, and persistent-cache traffic per entry.  Every winning
schedule is additionally re-run on the *reference* interpreter and
must match the predecoded engine bit-for-bit (cycles and memory) —
the tuner's oracle is only trusted because the differential suite
backs it.

Invariants asserted here (and validated by CI on the smoke profile):

* tuned cycles <= default cycles for every entry (the default is
  always measured, so search can only improve);
* in the full profile, at least one Fig. 11 sweep point improves
  *strictly*.

Run as a script to (re)generate ``results/BENCH_tuning.json``::

    PYTHONPATH=src python benchmarks/bench_tuning.py

With ``BENCH_TUNE_SMOKE=1`` only a tiny exhaustive search (4x4 MatMul
+ ReLU) runs under a fixed candidate budget — CI uses that twice to
validate the schema and prove the persistent cache makes the second
run incremental.

JSON schema (``schema`` = 1)::

    {
      "schema": 1, "smoke": false, "seed": 0,
      "strategy": "exhaustive", "engine_version": 1,
      "candidate_budget": <smoke cap or null>,
      "entries": [
        {"group": "paper" | "nsnet2" | "alexnet" | "fig11",
         "kernel": "...", "sizes": [..],
         "default_cycles": .., "tuned_cycles": .., "speedup": ..,
         "config": {"permutation": .., "unroll_factor": ..,
                    "num_cores": ..},
         "pipeline_spec": "...",
         "candidates_evaluated": .., "cache_hits": ..,
         "cache_misses": .., "differential_ok": true}
      ],
      "networks": {"<name>": {"default_cycles": ..,
                              "tuned_cycles": ..}},
      "summary": {"entries": .., "improved": ..,
                  "fig11_strictly_improved": <bool>,
                  "candidates_evaluated": .., "cache_hits": ..,
                  "cache_misses": ..}
    }
"""

import json
import os
import sys

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)

from repro.compiler import Compiler  # noqa: E402
from repro.kernels import KERNEL_BUILDERS, networks  # noqa: E402
from repro.snitch.engine import ENGINE_VERSION  # noqa: E402
from repro.snitch.machine import SnitchMachine  # noqa: E402
from repro.snitch.memory import TCDM  # noqa: E402
from repro.tune import (  # noqa: E402
    TuneCache,
    schedule_table,
    tune_kernel,
)
from repro.tune.schedule import resolve_kernel  # noqa: E402

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "results", "BENCH_tuning.json"
)
CACHE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "results", "tune_cache.json"
)

#: Tuning-run seed: fixes input data and any random sampling; recorded
#: in the results so the run is reproducible.
SEED = 0

#: Smoke profile: candidate cap for the tiny exhaustive search.
SMOKE_BUDGET = 16

#: Table 1 kernels at representative (TCDM-friendly) shapes.
PAPER_KERNELS = (
    ("fill", (8, 16)),
    ("sum", (8, 16)),
    ("relu", (8, 16)),
    ("conv3x3", (8, 8)),
    ("max_pool3x3", (8, 8)),
    ("sum_pool3x3", (8, 8)),
    ("matmul", (4, 8, 8)),
    ("matmul_t", (4, 8, 8)),
    ("matvec", (8, 16)),
)

#: Figure 11 sweep subset: C[1xN] = A[1xK] B[KxN].
FIG11_GRID = (16, 32, 48, 64)

#: Builder function name -> tuner kernel name.
_BUILDER_TO_KERNEL = {
    builder.__name__: name
    for name, (builder, _arity) in KERNEL_BUILDERS.items()
}


def differential_check(schedule, seed: int) -> bool:
    """Winning schedule on both engines: identical cycles + memory.

    This is the per-result version of the differential suite: the
    predecoded engine (the tuner's oracle) and the reference
    interpreter must agree on the tuned kernel, and the result must
    match the numpy golden model.
    """
    builder, sizes = resolve_kernel(schedule.kernel, schedule.sizes)
    module, kernel_spec = builder(*sizes)
    compiled = Compiler(schedule.pipeline_spec).compile(module)
    arguments = kernel_spec.random_arguments(seed=seed)
    outputs = []
    cycle_counts = []
    for reference in (False, True):
        memory = TCDM()
        int_args, float_args = {}, {}
        placements = []
        next_int = next_float = 0
        for argument in arguments:
            if isinstance(argument, np.ndarray):
                base = memory.allocate(argument.nbytes)
                memory.write_array(base, argument)
                int_args[f"a{next_int}"] = base
                next_int += 1
                placements.append((base, argument))
            else:
                float_args[f"fa{next_float}"] = float(argument)
                next_float += 1
                placements.append(None)
        machine = SnitchMachine(compiled.program, memory)
        runner = machine.run_reference if reference else machine.run
        trace = runner(
            compiled.entry, int_args=int_args, float_args=float_args
        )
        cycle_counts.append(trace.cycles)
        arrays = []
        for placement in placements:
            if placement is None:
                arrays.append(None)
                continue
            base, array = placement
            arrays.append(
                memory.read_array(base, array.shape, array.dtype)
            )
        outputs.append(arrays)
    if cycle_counts[0] != cycle_counts[1]:
        return False
    if cycle_counts[0] != schedule.cycles and schedule.config.num_cores == 1:
        return False
    for fast, ref in zip(outputs[0], outputs[1]):
        if fast is None:
            continue
        if not np.array_equal(fast, ref):
            return False
    expected = kernel_spec.reference(*arguments)
    for got, want in zip(outputs[0], expected):
        if want is not None and not np.allclose(got, want, atol=1e-8):
            return False
    return True


def tune_entry(group, kernel, sizes, cache, budget=None):
    """Tune one kernel shape and render its JSON entry."""
    result = tune_kernel(
        kernel,
        sizes,
        strategy="exhaustive",
        budget=budget,
        seed=SEED,
        cache=cache,
    )
    best = result.best
    ok = differential_check(best, SEED)
    entry = {
        "group": group,
        "kernel": kernel,
        "sizes": list(sizes),
        "default_cycles": best.default_cycles,
        "tuned_cycles": best.cycles,
        "speedup": round(best.speedup, 4),
        "config": best.config.to_json(),
        "pipeline_spec": best.pipeline_spec,
        "candidates_evaluated": result.candidates_evaluated,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "differential_ok": ok,
    }
    assert best.cycles <= best.default_cycles, entry
    assert ok, f"differential mismatch for {kernel} {sizes}"
    print(
        f"{group:<8} {kernel:<12} {'x'.join(map(str, sizes)):<10} "
        f"default {best.default_cycles:>6}  tuned {best.cycles:>6}  "
        f"({best.speedup:.3f}x, {result.candidates_evaluated} cands, "
        f"{result.cache_hits} cached)"
    )
    return entry, best


def network_entries(cache):
    """Distinct NSNet2/AlexNet layer shapes + whole-network totals."""
    entries = []
    tuned = []
    nets = {
        "nsnet2": networks.nsnet2_layers(),
        "alexnet": networks.alexnet_layers(),
    }
    seen = set()
    for net_name, layers in nets.items():
        for layer in layers:
            kernel = _BUILDER_TO_KERNEL[layer.builder.__name__]
            key = (kernel, tuple(layer.sizes))
            if key in seen:
                continue
            seen.add(key)
            entry, best = tune_entry(
                net_name, kernel, layer.sizes, cache
            )
            entries.append(entry)
            tuned.append(best)
    table = schedule_table(tuned)
    totals = {}
    for net_name, layers in nets.items():
        default_run = networks.run_network(
            net_name, layers, pipeline="ours", seed=SEED
        )
        tuned_run = networks.run_network(
            net_name, layers, pipeline="ours", seed=SEED,
            schedules=table,
        )
        assert tuned_run.total_cycles <= default_run.total_cycles
        totals[net_name] = {
            "default_cycles": default_run.total_cycles,
            "tuned_cycles": tuned_run.total_cycles,
        }
        print(
            f"network  {net_name:<12} default "
            f"{default_run.total_cycles:>6}  tuned "
            f"{tuned_run.total_cycles:>6}"
        )
    return entries, totals


def main() -> dict:
    smoke = bool(os.environ.get("BENCH_TUNE_SMOKE"))
    cache = TuneCache(os.environ.get("BENCH_TUNE_CACHE", CACHE_PATH))
    entries = []
    networks_totals = {}
    if smoke:
        for kernel, sizes in (("matmul", (4, 4, 4)), ("relu", (4, 4))):
            entry, _ = tune_entry(
                "paper", kernel, sizes, cache, budget=SMOKE_BUDGET
            )
            assert entry["candidates_evaluated"] <= SMOKE_BUDGET
            entries.append(entry)
    else:
        for kernel, sizes in PAPER_KERNELS:
            entry, _ = tune_entry("paper", kernel, sizes, cache)
            entries.append(entry)
        net_entries, networks_totals = network_entries(cache)
        entries.extend(net_entries)
        for k in FIG11_GRID:
            for n in FIG11_GRID:
                entry, _ = tune_entry("fig11", "matmul", (1, k, n), cache)
                entries.append(entry)
    improved = sum(
        1 for e in entries if e["tuned_cycles"] < e["default_cycles"]
    )
    fig11_strict = any(
        e["tuned_cycles"] < e["default_cycles"]
        for e in entries
        if e["group"] == "fig11"
    )
    if not smoke:
        assert fig11_strict, (
            "no Fig. 11 sweep point improved strictly — the schedule "
            "space lost its known wins"
        )
    results = {
        "schema": 1,
        "smoke": smoke,
        "seed": SEED,
        "strategy": "exhaustive",
        "engine_version": ENGINE_VERSION,
        "candidate_budget": SMOKE_BUDGET if smoke else None,
        "entries": entries,
        "networks": networks_totals,
        "summary": {
            "entries": len(entries),
            "improved": improved,
            "fig11_strictly_improved": fig11_strict,
            "candidates_evaluated": sum(
                e["candidates_evaluated"] for e in entries
            ),
            "cache_hits": sum(e["cache_hits"] for e in entries),
            "cache_misses": sum(e["cache_misses"] for e in entries),
        },
    }
    cache.save()
    path = os.path.abspath(RESULTS_PATH)
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")
    print(
        f"{len(entries)} entries, {improved} improved, "
        f"{results['summary']['cache_hits']} cache hits / "
        f"{results['summary']['cache_misses']} misses"
    )
    return results


if __name__ == "__main__":
    main()
