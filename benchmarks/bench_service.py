"""Compile-service benchmark: store hit-rates and submit latencies.

Starts a real compile server (``repro.service.serve_forever``) on a
Unix socket over a fresh content-addressed artifact store, then drives
it with the Table 1 kernel suite plus every distinct NSNet2/AlexNet
layer shape (the paper's two network kernel mixes):

* **cold pass** — every request misses the store and is computed by
  the worker tier; per-request submit-to-result latency is measured
  client-side;
* **warm pass** — the identical requests again; every one must be
  served straight from the store (the bench asserts a >= 95% hit
  rate, and a repeated ``batch`` call asserts 100%);
* **rehydration fidelity** — for every Table 1 kernel, the kernel
  rehydrated from its stored artifact must have *byte-identical*
  assembly and an *identical* simulated cycle count to a fresh
  compile.

Run as a script to (re)generate ``results/BENCH_service.json``::

    PYTHONPATH=src python benchmarks/bench_service.py

With ``BENCH_SERVICE_SMOKE=1`` only a three-kernel subset runs (CI
uses this: the warm-pass assertions and the JSON schema are identical
to the full profile).

JSON schema (``schema`` = 1)::

    {
      "schema": 1, "smoke": false, "seed": 0, "engine_version": 1,
      "workers": 1,
      "requests": {"total": .., "compile": .., "measure": ..},
      "cold": {"hit_rate": .., "sources": {"store": .., ...},
               "latency_ms": {"p50": .., "p95": .., "p99": ..}},
      "warm": {... same shape ...},
      "batch_warm": {"jobs": .., "hit_rate": ..},
      "rehydration": {"<kernel>": {"asm_identical": true,
                                   "cycles_fresh": ..,
                                   "cycles_rehydrated": ..}},
      "server": {... final server stats ...}
    }
"""

import json
import os
import sys
import tempfile
import threading
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)

from repro import api  # noqa: E402
from repro.kernels import KERNEL_BUILDERS, networks  # noqa: E402
from repro.service import (  # noqa: E402
    ArtifactStore,
    ServiceClient,
    ServiceRequest,
    serve_forever,
)
from repro.snitch.engine import ENGINE_VERSION  # noqa: E402
from repro.tune.schedule import resolve_kernel  # noqa: E402

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "results", "BENCH_service.json"
)

SEED = 0

#: Table 1 kernels at representative (TCDM-friendly) shapes.
PAPER_KERNELS = (
    ("fill", (8, 16)),
    ("sum", (8, 16)),
    ("relu", (8, 16)),
    ("conv3x3", (8, 8)),
    ("max_pool3x3", (8, 8)),
    ("sum_pool3x3", (8, 8)),
    ("matmul", (4, 8, 8)),
    ("matmul_t", (4, 8, 8)),
    ("matvec", (8, 16)),
)

SMOKE_KERNELS = (
    ("matmul", (4, 4, 4)),
    ("relu", (4, 4)),
    ("sum", (2, 4)),
)

_BUILDER_TO_KERNEL = {
    builder.__name__: name
    for name, (builder, _arity) in KERNEL_BUILDERS.items()
}


def build_requests(smoke: bool) -> list[ServiceRequest]:
    """The benchmark's request mix: compiles + default measurements."""
    shapes = list(SMOKE_KERNELS if smoke else PAPER_KERNELS)
    if not smoke:
        seen = set(shapes)
        for layers in (
            networks.nsnet2_layers(),
            networks.alexnet_layers(),
        ):
            for layer in layers:
                kernel = _BUILDER_TO_KERNEL[layer.builder.__name__]
                key = (kernel, tuple(layer.sizes))
                if key not in seen:
                    seen.add(key)
                    shapes.append(key)
    requests = [
        ServiceRequest("compile", kernel, sizes)
        for kernel, sizes in shapes
    ]
    requests.extend(
        ServiceRequest("measure", kernel, sizes, seed=SEED)
        for kernel, sizes in shapes
    )
    return requests


def percentile(samples: list[float], p: float) -> float:
    ordered = sorted(samples)
    index = max(
        0, min(len(ordered) - 1, round(p / 100 * len(ordered)) - 1)
    )
    return ordered[index]


def run_pass(client, requests) -> dict:
    """Submit every request individually; summarize the pass."""
    latencies = []
    sources: dict[str, int] = {}
    for request in requests:
        t0 = time.perf_counter()
        result = client.submit(request)
        latencies.append((time.perf_counter() - t0) * 1000)
        if result["fault"] is not None:
            raise AssertionError(
                f"{request.label()} faulted: {result['fault']}"
            )
        sources[result["source"]] = (
            sources.get(result["source"], 0) + 1
        )
    return {
        "hit_rate": sources.get("store", 0) / len(requests),
        "sources": dict(sorted(sources.items())),
        "latency_ms": {
            "p50": round(percentile(latencies, 50), 3),
            "p95": round(percentile(latencies, 95), 3),
            "p99": round(percentile(latencies, 99), 3),
        },
    }


def check_rehydration(store_dir, smoke: bool) -> dict:
    """Stored vs. fresh compile: byte-identical asm, same cycles."""
    store = ArtifactStore(store_dir)
    report = {}
    for kernel, sizes in SMOKE_KERNELS if smoke else PAPER_KERNELS:
        builder, resolved = resolve_kernel(kernel, sizes)
        module, spec = builder(*resolved)
        fresh = api.compile_linalg(module)
        module2, _ = builder(*resolved)
        stored = api.compile_linalg(module2, store=store)
        if not stored.rehydrated:
            raise AssertionError(
                f"{kernel} {sizes}: expected a store hit for a "
                "kernel the server already compiled"
            )
        arguments = spec.random_arguments(seed=SEED)
        cycles_fresh = api.run_kernel(fresh, arguments).trace.cycles
        cycles_stored = api.run_kernel(
            stored, spec.random_arguments(seed=SEED)
        ).trace.cycles
        entry = {
            "asm_identical": fresh.asm == stored.asm,
            "cycles_fresh": cycles_fresh,
            "cycles_rehydrated": cycles_stored,
        }
        assert entry["asm_identical"], (
            f"{kernel} {sizes}: rehydrated assembly differs"
        )
        assert cycles_fresh == cycles_stored, (
            f"{kernel} {sizes}: rehydrated cycles differ "
            f"({cycles_fresh} vs {cycles_stored})"
        )
        report[f"{kernel}/{'x'.join(map(str, resolved))}"] = entry
        print(
            f"rehydrate {kernel:<12} "
            f"{'x'.join(map(str, resolved)):<10} "
            f"asm identical, {cycles_fresh} cycles both ways"
        )
    return report


def main() -> dict:
    smoke = bool(os.environ.get("BENCH_SERVICE_SMOKE"))
    workers = int(os.environ.get("BENCH_SERVICE_WORKERS", "1"))
    requests = build_requests(smoke)
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = os.path.join(tmp, "store")
        socket_path = os.path.join(tmp, "service.sock")
        ready = threading.Event()
        server_thread = threading.Thread(
            target=serve_forever,
            args=(store_dir, socket_path),
            kwargs={
                "workers": workers,
                "ready": lambda addr: ready.set(),
            },
            daemon=True,
        )
        server_thread.start()
        if not ready.wait(30):
            raise RuntimeError("server did not come up")
        client = ServiceClient(socket_path)

        cold = run_pass(client, requests)
        print(
            f"cold: {len(requests)} requests, "
            f"hit rate {cold['hit_rate']:.0%}, "
            f"p50 {cold['latency_ms']['p50']} ms, "
            f"p99 {cold['latency_ms']['p99']} ms"
        )
        warm = run_pass(client, requests)
        print(
            f"warm: hit rate {warm['hit_rate']:.0%}, "
            f"p50 {warm['latency_ms']['p50']} ms, "
            f"p99 {warm['latency_ms']['p99']} ms"
        )
        assert warm["hit_rate"] >= 0.95, (
            f"warm hit rate {warm['hit_rate']:.0%} < 95%: the store "
            "is not serving repeated batches"
        )

        batch_results = client.batch(requests)
        batch_hits = sum(
            1 for r in batch_results if r["source"] == "store"
        )
        batch_warm = {
            "jobs": len(batch_results),
            "hit_rate": batch_hits / len(batch_results),
        }
        assert batch_warm["hit_rate"] == 1.0, (
            "a repeated identical batch must be 100% store hits, got "
            f"{batch_warm['hit_rate']:.0%}"
        )
        print(
            f"batch (warm): {batch_warm['jobs']} jobs, "
            f"{batch_warm['hit_rate']:.0%} store hits"
        )

        server_stats = client.stats()
        client.shutdown()
        server_thread.join(30)

        rehydration = check_rehydration(store_dir, smoke)

    compile_count = sum(1 for r in requests if r.kind == "compile")
    results = {
        "schema": 1,
        "smoke": smoke,
        "seed": SEED,
        "engine_version": ENGINE_VERSION,
        "workers": workers,
        "requests": {
            "total": len(requests),
            "compile": compile_count,
            "measure": len(requests) - compile_count,
        },
        "cold": cold,
        "warm": warm,
        "batch_warm": batch_warm,
        "rehydration": rehydration,
        "server": server_stats,
    }
    path = os.path.abspath(RESULTS_PATH)
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")
    return results


if __name__ == "__main__":
    main()
