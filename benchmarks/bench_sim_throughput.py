"""Simulator-throughput benchmark: predecoded engine vs. reference.

Measures simulated instructions per wall-clock second for both
execution engines — :meth:`SnitchMachine.run` (the predecoded,
closure-threaded engine) and :meth:`SnitchMachine.run_reference` (the
original decode-as-you-go interpreter) — on one workload per kernel
class the paper evaluates:

* ``scalar_loop`` — the MatMul through the scalar-loop baseline
  pipeline (explicit loads/stores, branches; integer-core heavy);
* ``frep_ssr_gemm`` — the MatMul through the full ``ours`` pipeline
  (FREP macro-op replay + 3 SSR streams; the paper's headline shape
  and this benchmark's headline: the engine must hold a >= 3x paired
  advantage here);
* ``packed_simd`` — the handwritten f32 MatMulT with ``vfmac.s``/
  ``vfsum.s`` packed-SIMD (paper Section 4.3);
* ``full_network`` — the NSNet2 layer mix end to end.

The machine's wall-clock speed drifts on shared hardware, so the
headline number is *paired*: each round times reference and fast
engines back to back in an ABBA order and only the in-round ratio is
kept; the reported speedup is the median of those ratios.

Run as a script to (re)generate ``results/BENCH_sim_throughput.json``::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py

With ``BENCH_SIM_SMOKE=1`` only a downsized GEMM runs for one round —
the CI uses that to validate the harness and the JSON schema without
burning minutes.

JSON schema (``schema`` = 1)::

    {
      "schema": 1,
      "protocol": "...",
      "smoke": false,
      "workloads": {
        "<name>": {
          "kernel": "...", "pipeline": "...",
          "instructions": <simulated instructions per run>,
          "ref_ips": .., "fast_ips": ..,        # median inst/second
          "paired_ratios": [..],                # per-round ref/fast
          "speedup": ..                         # median paired ratio
        }
      },
      "headline": {"workload": "frep_ssr_gemm", "ref_ips": ..,
                   "fast_ips": .., "speedup": ..}
    }
"""

from __future__ import annotations

import json
import os
import statistics
import time

import numpy as np

from repro import api, kernels
from repro.kernels import lowlevel, networks
from repro.snitch.machine import SnitchMachine
from repro.snitch.memory import TCDM

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "results", "BENCH_sim_throughput.json"
)

#: ABBA rounds per workload (each round: fast, ref, ref, fast).
ROUNDS = 5

PROTOCOL = (
    "per workload: decode/compile untimed, then {rounds} ABBA rounds "
    "(fast, ref, ref, fast), each leg simulating the kernel once on a "
    "freshly seeded TCDM; paired_ratios[i] = (ref wall of round i) / "
    "(fast wall of round i); speedup = median ratio; ips = simulated "
    "instructions / median wall seconds per engine"
)


def _placements(arguments):
    """Pre-serialize arguments once so timed runs only memcpy."""
    plan = []
    for argument in arguments:
        if isinstance(argument, np.ndarray):
            plan.append(("array", np.ascontiguousarray(argument)))
        else:
            plan.append(("float", float(argument)))
    return plan


def _seeded_run(program, entry, plan, reference):
    """One simulation on a fresh TCDM; returns (wall seconds, executed)."""
    memory = TCDM()
    int_args = {}
    float_args = {}
    next_int = next_float = 0
    for kind, value in plan:
        if kind == "array":
            base = memory.allocate(value.nbytes)
            memory.write_array(base, value)
            int_args[f"a{next_int}"] = base
            next_int += 1
        else:
            float_args[f"fa{next_float}"] = value
            next_float += 1
    machine = SnitchMachine(program, memory)
    runner = machine.run_reference if reference else machine.run
    start = time.perf_counter()
    runner(entry, int_args=int_args, float_args=float_args)
    wall = time.perf_counter() - start
    return wall, machine._executed


class _SingleKernel:
    """A workload that simulates one compiled kernel."""

    def __init__(self, name, kernel, pipeline, compiled, spec):
        self.name = name
        self.kernel = kernel
        self.pipeline = pipeline
        self.program = compiled.program
        self.entry = compiled.entry
        self.plan = _placements(spec.random_arguments(seed=0))

    def simulate(self, reference):
        return _seeded_run(
            self.program, self.entry, self.plan, reference
        )


class _NetworkWorkload:
    """A workload that simulates a whole network's kernel sequence."""

    def __init__(self, name, layer_configs, pipeline):
        self.name = name
        self.kernel = f"{len(layer_configs)} layer kernels"
        self.pipeline = pipeline
        self.layers = [
            (
                compiled.program,
                compiled.entry,
                _placements(spec.random_arguments(seed=0)),
            )
            for compiled, spec in networks.compile_layers(
                layer_configs, pipeline
            )
        ]

    def simulate(self, reference):
        wall = 0.0
        executed = 0
        for program, entry, plan in self.layers:
            leg_wall, leg_executed = _seeded_run(
                program, entry, plan, reference
            )
            wall += leg_wall
            executed += leg_executed
        return wall, executed


def build_workloads(smoke: bool):
    if smoke:
        module, spec = kernels.matmul(1, 8, 8)
        compiled = api.compile_linalg(module, pipeline="ours")
        return [
            _SingleKernel(
                "frep_ssr_gemm", "matmul(1, 8, 8)", "ours",
                compiled, spec,
            )
        ]
    workloads = []
    module, spec = kernels.matmul(1, 16, 16)
    workloads.append(
        _SingleKernel(
            "scalar_loop", "matmul(1, 16, 16)", "table3-baseline",
            api.compile_linalg(module, pipeline="table3-baseline"), spec,
        )
    )
    module, spec = kernels.matmul(1, 48, 48)
    workloads.append(
        _SingleKernel(
            "frep_ssr_gemm", "matmul(1, 48, 48)", "ours",
            api.compile_linalg(module, pipeline="ours"), spec,
        )
    )
    module, spec = lowlevel.lowlevel_matmul_t_f32(64, 40)
    workloads.append(
        _SingleKernel(
            "packed_simd", "lowlevel_matmul_t_f32(64, 40)", "lowlevel",
            api.compile_lowlevel(module, spec.name), spec,
        )
    )
    workloads.append(
        _NetworkWorkload(
            "full_network", networks.nsnet2_layers(), "ours"
        )
    )
    return workloads


def measure(workload, rounds: int) -> dict:
    # Untimed warm-up: populates the decode cache (decode is a
    # once-per-program cost, amortized in real use) and touches
    # both paths once.
    workload.simulate(reference=False)
    _, instructions = workload.simulate(reference=True)
    ratios = []
    fast_walls = []
    ref_walls = []
    for _ in range(rounds):
        fast_a, _ = workload.simulate(reference=False)
        ref_a, _ = workload.simulate(reference=True)
        ref_b, _ = workload.simulate(reference=True)
        fast_b, _ = workload.simulate(reference=False)
        fast = fast_a + fast_b
        ref = ref_a + ref_b
        fast_walls.append(fast / 2)
        ref_walls.append(ref / 2)
        ratios.append(ref / fast)
    fast_wall = statistics.median(fast_walls)
    ref_wall = statistics.median(ref_walls)
    return {
        "kernel": workload.kernel,
        "pipeline": workload.pipeline,
        "instructions": instructions,
        "ref_ips": round(instructions / ref_wall, 1),
        "fast_ips": round(instructions / fast_wall, 1),
        "paired_ratios": [round(r, 2) for r in ratios],
        "speedup": round(statistics.median(ratios), 2),
    }


def main() -> dict:
    smoke = bool(os.environ.get("BENCH_SIM_SMOKE"))
    rounds = 1 if smoke else ROUNDS
    results = {
        "schema": 1,
        "protocol": PROTOCOL.format(rounds=rounds),
        "smoke": smoke,
        "workloads": {},
    }
    for workload in build_workloads(smoke):
        point = measure(workload, rounds)
        results["workloads"][workload.name] = point
        print(
            f"{workload.name:<14} {point['instructions']:>8} inst  "
            f"ref {point['ref_ips']:>10.0f} i/s  "
            f"fast {point['fast_ips']:>10.0f} i/s  "
            f"speedup {point['speedup']:.2f}x"
        )
    headline = results["workloads"]["frep_ssr_gemm"]
    results["headline"] = {
        "workload": "frep_ssr_gemm",
        "ref_ips": headline["ref_ips"],
        "fast_ips": headline["fast_ips"],
        "speedup": headline["speedup"],
    }
    path = os.path.abspath(RESULTS_PATH)
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")
    return results


if __name__ == "__main__":
    main()
