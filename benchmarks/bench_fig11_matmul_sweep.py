"""Figure 11: sustained throughput of the 64-bit MatMul (M = 1).

Sweeps C[1xN] = A[1xK] B[KxN] over N, K in {4, 8, ..., 64} and reports
the fraction of the 2-FLOPs/cycle FMA roofline, regenerating the paper's
heatmap: low at small sizes (setup-dominated), above 90% past a size
frontier.
"""

import numpy as np
import pytest

from repro import api, kernels
from benchmarks.conftest import make_report_fixture

report = make_report_fixture(
    "fig11_matmul_sweep.txt",
    "Sustained 64-bit MatMul throughput, % of the 2 FLOP/cycle roofline",
)

GRID = tuple(range(4, 65, 4))


def roofline_fraction(n, k):
    module, spec = kernels.matmul(1, k, n)
    compiled = api.compile_linalg(module, pipeline="ours")
    args = spec.random_arguments(seed=0)
    result = api.run_kernel(compiled, args)
    expected = spec.reference(*args)
    np.testing.assert_allclose(result.arrays[2], expected[2], atol=1e-8)
    return 100 * result.trace.throughput / 2.0


def bench_full_sweep(benchmark, report):
    """The complete 16x16 (N, K) grid in one benchmark."""

    def sweep():
        grid = {}
        for k in GRID:
            for n in GRID:
                grid[(n, k)] = roofline_fraction(n, k)
        return grid

    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = "K\\N " + " ".join(f"{n:>5}" for n in GRID)
    report.row(header)
    for k in GRID:
        row = " ".join(f"{grid[(n, k)]:5.1f}" for n in GRID)
        report.row(f"{k:>3} {row}")
    over_90 = sum(1 for v in grid.values() if v >= 90.0)
    benchmark.extra_info.update(
        points=len(grid),
        points_over_90_percent=over_90,
        max_percent=round(max(grid.values()), 1),
        min_percent=round(min(grid.values()), 1),
    )
    report.row("")
    report.row(
        f"{over_90}/{len(grid)} points at or above 90% of the roofline"
    )
    # Paper claims: >90% past the frontier, growth in both axes.
    assert grid[(64, 64)] > 90.0
    assert grid[(4, 4)] < grid[(32, 32)] < grid[(64, 64)]
