"""Service resilience benchmark: availability and latency under
injected faults.

Drives a real compile server (``repro.service.serve_forever`` over a
Unix socket) through four scenarios and measures what a *retrying*
client actually observes — availability (fraction of calls that end
with a usable result) and client-side p50/p99 latency:

* **baseline** — a clean server; the control group.
* **delay** — ``delay-response`` injections stall replies past the
  client's call timeout; bounded retries must absorb them.
* **overload** — ``reject-admission`` injections refuse requests with
  retryable overload faults; backoff + retry must absorb them.
* **crash_restart** — a ``crash-server`` injection kills the server
  mid-run (abrupt, no drain); the benchmark restarts it on the same
  socket + store, finishes the run, then proves the degraded path is
  *safe*: zero corrupt store entries and 100% warm hits on a full
  resubmission pass.

The headline assertions: baseline availability is 1.0, every injected
scenario still reaches availability 1.0 *through retries* (the whole
point of the client's resilience layer), and the crash leaves no
corruption behind.

Run as a script to (re)generate
``results/BENCH_service_resilience.json``::

    PYTHONPATH=src python benchmarks/bench_service_resilience.py

With ``BENCH_RESILIENCE_SMOKE=1`` a smaller request mix runs (CI uses
this; assertions and schema are identical).

JSON schema (``schema`` = 1)::

    {
      "schema": 1, "smoke": false, "seed": 0, "engine_version": 1,
      "scenarios": {
        "<name>": {
          "calls": .., "ok": .., "faulted": .., "unavailable": ..,
          "availability": ..,
          "latency_ms": {"p50": .., "p99": ..},
          "fault_kinds": {"<kind>": ..},
          "retries": ..,          # client retry budget used
          # crash_restart only:
          "restarts": 1, "resubmit_hit_rate": 1.0,
          "store_corrupt": 0
        }
      }
    }
"""

import json
import os
import sys
import tempfile
import threading
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)

from repro.service import (  # noqa: E402
    ArtifactStore,
    ServiceClient,
    ServiceRequest,
    ServiceUnavailable,
    serve_forever,
)
from repro.snitch.engine import ENGINE_VERSION  # noqa: E402
from repro.tune.faults import FaultInjector, Injection  # noqa: E402

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__),
    "..",
    "results",
    "BENCH_service_resilience.json",
)

SEED = 0

FULL_KERNELS = (
    ("fill", (4, 8)),
    ("sum", (4, 8)),
    ("relu", (4, 8)),
    ("conv3x3", (6, 6)),
    ("matmul", (4, 4, 4)),
    ("matvec", (4, 8)),
)

SMOKE_KERNELS = (
    ("sum", (2, 4)),
    ("relu", (2, 4)),
    ("matmul", (2, 3, 4)),
)


def build_requests(smoke: bool, rounds: int) -> list[ServiceRequest]:
    kernels = SMOKE_KERNELS if smoke else FULL_KERNELS
    requests = []
    for _ in range(rounds):
        requests.extend(
            ServiceRequest("compile", kernel, sizes)
            for kernel, sizes in kernels
        )
    return requests


def percentile(samples: list[float], p: float) -> float:
    ordered = sorted(samples)
    index = max(
        0, min(len(ordered) - 1, round(p / 100 * len(ordered)) - 1)
    )
    return ordered[index]


class _Server:
    """One serve_forever thread over a given socket + store."""

    def __init__(self, store_dir, socket_path, injector=None):
        self.socket_path = socket_path
        ready = threading.Event()
        self.exit_code = []
        self.thread = threading.Thread(
            target=lambda: self.exit_code.append(
                serve_forever(
                    store_dir,
                    socket_path,
                    ready=lambda addr: ready.set(),
                    injector=injector,
                    drain_timeout=5.0,
                )
            ),
            daemon=True,
        )
        self.thread.start()
        if not ready.wait(30):
            raise RuntimeError("server did not come up")

    def stop(self, client):
        try:
            client.shutdown()
        except Exception:
            pass
        self.thread.join(60)
        if self.thread.is_alive():
            raise RuntimeError("server loop hung on shutdown")


def drive(client, requests, on_unavailable=None) -> dict:
    """Submit every request; classify each call's terminal outcome."""
    latencies = []
    ok = faulted = unavailable = 0
    fault_kinds: dict[str, int] = {}
    for request in requests:
        t0 = time.perf_counter()
        try:
            result = client.submit(request)
        except ServiceUnavailable as error:
            latencies.append((time.perf_counter() - t0) * 1000)
            unavailable += 1
            kind = error.fault.kind
            fault_kinds[kind] = fault_kinds.get(kind, 0) + 1
            if on_unavailable is not None:
                on_unavailable()
            continue
        latencies.append((time.perf_counter() - t0) * 1000)
        if result["fault"] is None:
            ok += 1
        else:
            faulted += 1
            kind = result["fault"]["kind"]
            fault_kinds[kind] = fault_kinds.get(kind, 0) + 1
    return {
        "calls": len(requests),
        "ok": ok,
        "faulted": faulted,
        "unavailable": unavailable,
        "availability": ok / len(requests),
        "latency_ms": {
            "p50": round(percentile(latencies, 50), 3),
            "p99": round(percentile(latencies, 99), 3),
        },
        "fault_kinds": dict(sorted(fault_kinds.items())),
    }


def _client(socket_path, retries) -> ServiceClient:
    return ServiceClient(
        socket_path,
        connect_timeout=5.0,
        call_timeout=30.0,
        retries=retries,
        backoff=0.02,
        breaker_threshold=10,
        breaker_cooldown=0.1,
    )


def run_scenario(name, requests, injector=None, retries=4, **knobs):
    """One scenario in a fresh store + server; returns its metrics."""
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = os.path.join(tmp, "store")
        socket_path = os.path.join(tmp, "service.sock")
        server = _Server(store_dir, socket_path, injector=injector)
        client = _client(socket_path, retries)
        if name == "delay":
            client.call_timeout = knobs["call_timeout"]
        metrics = drive(client, requests)
        metrics["retries"] = retries
        server.stop(client)
        return metrics


def run_crash_restart(requests, retries=4) -> dict:
    """Kill the server mid-run, restart on the same socket + store,
    finish, and audit the aftermath."""
    crash_at = max(1, len(requests) // 2)
    injector = FaultInjector([Injection(crash_at, "crash-server")])
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = os.path.join(tmp, "store")
        socket_path = os.path.join(tmp, "service.sock")
        server_box = [
            _Server(store_dir, socket_path, injector=injector)
        ]
        restarts = [0]

        def restart():
            # The crashed loop unlinks its socket on the way out;
            # wait for it, then bring a clean server back up.
            server_box[0].thread.join(60)
            server_box[0] = _Server(store_dir, socket_path)
            restarts[0] += 1

        client = _client(socket_path, retries)
        metrics = drive(client, requests, on_unavailable=restart)
        metrics["retries"] = retries
        metrics["restarts"] = restarts[0]
        # The degraded path must be safe: resubmitting everything is
        # all warm hits (completed work survived the crash) and the
        # store audits clean.
        results = [client.submit(r) for r in requests]
        assert all(r["fault"] is None for r in results)
        hits = sum(1 for r in results if r["source"] == "store")
        metrics["resubmit_hit_rate"] = hits / len(results)
        report = ArtifactStore(store_dir).verify_all()
        metrics["store_corrupt"] = report["corrupt"]
        server_box[0].stop(client)
        return metrics


def main() -> dict:
    smoke = bool(os.environ.get("BENCH_RESILIENCE_SMOKE"))
    rounds = 2 if smoke else 4
    requests = build_requests(smoke, rounds)
    distinct = len(SMOKE_KERNELS if smoke else FULL_KERNELS)

    scenarios = {}
    scenarios["baseline"] = run_scenario("baseline", requests)
    print(
        f"baseline: availability "
        f"{scenarios['baseline']['availability']:.0%}, "
        f"p50 {scenarios['baseline']['latency_ms']['p50']} ms, "
        f"p99 {scenarios['baseline']['latency_ms']['p99']} ms"
    )
    assert scenarios["baseline"]["availability"] == 1.0, (
        "a clean server must resolve every request"
    )

    delay_plan = FaultInjector(
        [
            Injection(i, "delay-response", value=0.5)
            for i in range(0, len(requests), distinct)
        ]
    )
    scenarios["delay"] = run_scenario(
        "delay", requests, injector=delay_plan, call_timeout=0.15
    )
    print(
        f"delay: availability "
        f"{scenarios['delay']['availability']:.0%}, "
        f"p99 {scenarios['delay']['latency_ms']['p99']} ms"
    )

    overload_plan = FaultInjector(
        [
            Injection(i, "reject-admission")
            for i in range(0, len(requests), distinct)
        ]
    )
    scenarios["overload"] = run_scenario(
        "overload", requests, injector=overload_plan
    )
    print(
        f"overload: availability "
        f"{scenarios['overload']['availability']:.0%}, "
        f"p99 {scenarios['overload']['latency_ms']['p99']} ms"
    )

    scenarios["crash_restart"] = run_crash_restart(requests)
    print(
        f"crash_restart: availability "
        f"{scenarios['crash_restart']['availability']:.0%}, "
        f"{scenarios['crash_restart']['restarts']} restart(s), "
        f"resubmit hit rate "
        f"{scenarios['crash_restart']['resubmit_hit_rate']:.0%}, "
        f"{scenarios['crash_restart']['store_corrupt']} corrupt "
        f"entries"
    )

    for name in ("delay", "overload"):
        assert scenarios[name]["availability"] == 1.0, (
            f"{name}: bounded retries must absorb every injected "
            f"fault, got {scenarios[name]['availability']:.0%}"
        )
    assert scenarios["crash_restart"]["store_corrupt"] == 0, (
        "a kill mid-run must never corrupt the store"
    )
    assert scenarios["crash_restart"]["resubmit_hit_rate"] == 1.0, (
        "after a crash + restart, resubmitting completed work must "
        "be all warm store hits"
    )

    results = {
        "schema": 1,
        "smoke": smoke,
        "seed": SEED,
        "engine_version": ENGINE_VERSION,
        "scenarios": scenarios,
    }
    path = os.path.abspath(RESULTS_PATH)
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")
    return results


if __name__ == "__main__":
    main()
