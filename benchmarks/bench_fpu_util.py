"""FPU-utilization benchmark: the paper's Table 1 methodology.

Profiles every Table 1 kernel through every named pipeline with the
cycle-attribution profiler (:mod:`repro.obs.profiler`) attached and
reports, per (kernel, pipeline) cell: total cycles, FLOPs, FLOPs per
cycle, FPU utilization, and the full cycle breakdown — FPU arithmetic,
FPU non-arith, FPU stalls, integer core, SSR drain waits, branch
bubbles — split by region (FREP body vs. scalar code).

Every cell asserts the profiler's partition invariant: the buckets sum
*exactly* to the run's total cycles (no idle, no double counting), and
the ``fpu_arith`` bucket equals the trace's own FPU-arithmetic count.

Run as a script to (re)generate ``results/BENCH_fpu_util.json``::

    PYTHONPATH=src python benchmarks/bench_fpu_util.py

With ``BENCH_FPU_SMOKE=1`` only a three-kernel subset runs against
the ``ours`` / ``table3-baseline`` pipelines (CI uses this; the
assertions and JSON schema are identical to the full profile).

JSON schema (``schema`` = 1)::

    {
      "schema": 1, "smoke": false, "seed": 0, "engine_version": 1,
      "pipelines": ["ours", ...],
      "kernels": {
        "<kernel>": {
          "sizes": [..],
          "<pipeline>": {
            "cycles": .., "flops": .., "flops_per_cycle": ..,
            "fpu_utilization": ..,
            "buckets": {"fpu_arith": .., "fpu_nonarith": ..,
                        "fpu_stall": .., "int_core": ..,
                        "ssr_wait": .., "branch_bubble": ..},
            "regions": {"scalar": {...}, "frep_body": {...}},
            "idle": 0
          }, ...
        }, ...
      }
    }
"""

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)

from repro.snitch.engine import ENGINE_VERSION  # noqa: E402
from repro.tools.kernel_profiler import profile_kernel  # noqa: E402
from repro.transforms.pipelines import PIPELINE_NAMES  # noqa: E402

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "results", "BENCH_fpu_util.json"
)

SEED = 0

#: Table 1 kernels at representative (TCDM-friendly) shapes.
PAPER_KERNELS = (
    ("fill", (8, 16)),
    ("sum", (8, 16)),
    ("relu", (8, 16)),
    ("conv3x3", (8, 8)),
    ("max_pool3x3", (8, 8)),
    ("sum_pool3x3", (8, 8)),
    ("matmul", (4, 8, 8)),
    ("matmul_t", (4, 8, 8)),
    ("matvec", (8, 16)),
)

SMOKE_KERNELS = ("matmul", "relu", "conv3x3")
SMOKE_PIPELINES = ("ours", "table3-baseline")


def profile_cell(kernel: str, sizes, pipeline: str) -> dict:
    """One (kernel, pipeline) profile with the invariants asserted."""
    profile, result = profile_kernel(
        kernel, tuple(sizes), pipeline=pipeline, seed=SEED
    )
    cell = profile.to_json()
    total = sum(cell["buckets"].values())
    assert total == cell["cycles"], (
        f"{kernel}/{pipeline}: buckets sum to {total}, "
        f"cycles are {cell['cycles']}"
    )
    assert cell["idle"] == 0, f"{kernel}/{pipeline}: idle cycles"
    assert (
        cell["buckets"]["fpu_arith"]
        == result.trace.fpu_arith_cycles
    ), f"{kernel}/{pipeline}: fpu_arith disagrees with the trace"
    region_total = sum(
        sum(buckets.values()) for buckets in cell["regions"].values()
    )
    assert region_total == cell["cycles"], (
        f"{kernel}/{pipeline}: regions sum to {region_total}"
    )
    return cell


def run_benchmark(smoke: bool = False) -> dict:
    """Profile the suite; returns the results document."""
    kernels = [
        (name, sizes)
        for name, sizes in PAPER_KERNELS
        if not smoke or name in SMOKE_KERNELS
    ]
    pipelines = [
        name
        for name in PIPELINE_NAMES
        if not smoke or name in SMOKE_PIPELINES
    ]
    results: dict = {
        "schema": 1,
        "smoke": smoke,
        "seed": SEED,
        "engine_version": ENGINE_VERSION,
        "pipelines": list(pipelines),
        "kernels": {},
    }
    for kernel, sizes in kernels:
        row: dict = {"sizes": list(sizes)}
        for pipeline in pipelines:
            row[pipeline] = profile_cell(kernel, sizes, pipeline)
            print(
                f"{kernel:<12} {pipeline:<16} "
                f"{row[pipeline]['cycles']:>7} cycles  "
                f"{100.0 * row[pipeline]['fpu_utilization']:5.1f}% "
                f"fpu",
                file=sys.stderr,
            )
        results["kernels"][kernel] = row
    return results


def main() -> int:
    smoke = bool(os.environ.get("BENCH_FPU_SMOKE"))
    results = run_benchmark(smoke=smoke)
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    cells = sum(
        len(row) - 1 for row in results["kernels"].values()
    )
    print(
        f"wrote {RESULTS_PATH} "
        f"({len(results['kernels'])} kernels x "
        f"{len(results['pipelines'])} pipelines, {cells} cells)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
