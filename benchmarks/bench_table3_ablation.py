"""Table 3: the incremental optimization study on MatMul 1x200 x 200x5.

Applies the pipeline stages cumulatively — Baseline, + Streams,
+ Scalar Replacement, + FRep, + Fuse Fill, + Unroll-and-Jam — and
reports registers, executed memory operations, FMA count, static FREP
count, cycles and FPU occupancy, mirroring the paper's table row for
row.  Two extra ablations cover design choices called out in DESIGN.md:
the unroll factor (the stall cliff below 4) and the stream-pattern
simplification (configuration instruction savings).
"""

import numpy as np
import pytest

from repro import api, kernels
from repro.transforms.pipelines import TABLE3_STAGES
from benchmarks.conftest import make_report_fixture

report = make_report_fixture(
    "table3_ablation.txt",
    f"{'stage':<22} {'FP':>5} {'int':>5} {'loads':>6} {'stores':>6} "
    f"{'fmadd':>6} {'frep':>5} {'cycles':>7} {'occup%':>7}",
)

SHAPE = (1, 200, 5)


def run_stage(pipeline):
    module, spec = kernels.matmul(*SHAPE)
    compiled = api.compile_linalg(module, pipeline=pipeline)
    args = spec.random_arguments(seed=0)
    result = api.run_kernel(compiled, args)
    expected = spec.reference(*args)
    np.testing.assert_allclose(result.arrays[2], expected[2], atol=1e-8)
    return compiled, result.trace


@pytest.mark.parametrize(
    "label,pipeline", TABLE3_STAGES, ids=[s[1] for s in TABLE3_STAGES]
)
def bench_stage(benchmark, report, label, pipeline):
    """One cumulative optimization stage of Table 3."""
    compiled, trace = benchmark.pedantic(
        lambda: run_stage(pipeline), rounds=1, iterations=1
    )
    fp, integer = compiled.register_usage()
    frep_static = compiled.program.static_counts().get("frep.o", 0)
    benchmark.extra_info.update(
        fp_registers=fp,
        int_registers=integer,
        loads=trace.loads,
        stores=trace.stores,
        fmadd=trace.fmadd,
        frep=frep_static,
        cycles=trace.cycles,
        occupancy=round(100 * trace.fpu_utilization, 2),
    )
    report.row(
        f"{label:<22} {fp:>2}/20 {integer:>2}/15 {trace.loads:>6} "
        f"{trace.stores:>6} {trace.fmadd:>6} {frep_static:>5} "
        f"{trace.cycles:>7} {100 * trace.fpu_utilization:>7.2f}"
    )


@pytest.mark.parametrize("factor", (1, 2, 4, 5))
def bench_unroll_factor_ablation(benchmark, report, factor):
    """DESIGN.md ablation: the FPU pipeline needs an interleave of >= 4
    (paper Section 3.4); smaller factors stall on the accumulator."""

    def once():
        module, spec = kernels.matmul(1, 200, 20)
        compiled = api.compile_linalg(
            module, pipeline="ours", unroll_factor=factor
        )
        result = api.run_kernel(compiled, spec.random_arguments(seed=0))
        return result.trace

    trace = benchmark.pedantic(once, rounds=1, iterations=1)
    benchmark.extra_info.update(
        cycles=trace.cycles,
        occupancy=round(100 * trace.fpu_utilization, 2),
        stalls=trace.fpu_stall_cycles,
    )
    report.row(
        f"unroll factor {factor:<8} {'':>5} {'':>5} {'':>6} {'':>6} "
        f"{'':>6} {'':>5} {trace.cycles:>7} "
        f"{100 * trace.fpu_utilization:>7.2f}"
    )


def bench_stream_config_simplification(benchmark, report):
    """DESIGN.md ablation: contiguous-dim collapsing and the zero-stride
    repetition keep the stream setup short — count the scfgwi writes the
    full MatMul kernel needs (2 per hardware dim + repeat + pointer)."""

    def once():
        module, _ = kernels.matmul(*SHAPE)
        compiled = api.compile_linalg(module, pipeline="ours")
        return compiled.program.static_counts()

    counts = benchmark.pedantic(once, rounds=1, iterations=1)
    scfgwi = counts.get("scfgwi", 0)
    benchmark.extra_info["scfgwi_instructions"] = scfgwi
    report.row(f"scfgwi after simplification: {scfgwi}")
    # 3 streams, each collapsed to one hardware dim (+ repeat + ptr):
    # well under the 3 * (2*4 + 2) = 30 an unsimplified config needs.
    assert scfgwi <= 12
