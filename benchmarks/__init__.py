"""Benchmark harness regenerating every table and figure of the paper's
evaluation (see DESIGN.md Section 4 for the experiment index)."""
