"""Compile-time benchmark over the Fig. 11 matmul size sweep.

Establishes (and tracks, PR over PR) the compiler's own speed: for every
size of the paper's Figure 11 MatMul sweep (``C[1xN] = A[1xK] B[KxN]``,
N = K in {4, 8, ..., 64}) the kernel is compiled through the ``ours``
and ``mlir`` named pipelines and the wall-clock time, the rewrite
driver's ops-visited / pattern-invocation / rewrites-applied counters
(from the :class:`PassManager` instrumentation, summed over all passes)
and the final module size are recorded.  A "large-unrolled" point —
the largest matmul at the biggest register-feasible unroll-and-jam
factor, the configuration the worklist-driver work targets — is
measured as well.

Run as a script to (re)generate ``results/BENCH_compile_time.json``::

    PYTHONPATH=src python benchmarks/bench_compile_time.py

JSON schema (``schema`` = 1)::

    {
      "schema": 1,
      "protocol": {...},                  # how wall_s is measured
      "grid": [4, 8, ..., 64],            # sizes (N = K, M = 1)
      "pipelines": ["ours", "mlir"],
      "baseline_seed": {                  # "before": the seed compiler
        "commit": "...", "protocol": "...",
        "points": {"<pipeline>_<size>": {"wall_s": ..,
                    "ops_visited": .., "pattern_invocations": ..}}
      },
      "current": {                        # "after": this tree
        "points": {"<pipeline>_<size>": {"wall_s": ..,
                    "ops_visited": .., "pattern_invocations": ..,
                    "rewrites_applied": .., "module_ops": ..}},
        "large_unroll": {...}             # ours, unroll factor 16
      },
      "headline": {"point": "ours_64", "before_wall_s": ..,
                   "after_wall_s": .., "speedup": ..}
    }

The ``baseline_seed`` block is the measurement taken on the seed
compiler (commit in the block, same best-of-R protocol, same machine)
before the linked-list IR + worklist-driver rebuild landed; rerunning
this script refreshes only ``current`` and ``headline``.
"""

from __future__ import annotations

import json
import os
import time

from repro import kernels
from repro.compiler import Compiler

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "results", "BENCH_compile_time.json"
)

#: Fig. 11 sweep sizes (N = K; M = 1).
GRID = tuple(range(4, 65, 4))
PIPELINES = ("ours", "mlir")
#: Best-of repeats per point.
REPEATS = 7
#: Largest register-feasible unroll-and-jam factor for the 64x64 point
#: (32 exhausts the spill-free allocator).
LARGE_UNROLL_FACTOR = 16

#: Seed-compiler measurements (commit b798d15 tree state, i.e. before
#: the linked-list IR / worklist driver / verifier rework), captured
#: with this file's exact protocol.  ``ops_visited`` and
#: ``pattern_invocations`` were counted by instrumenting the seed's
#: fixpoint re-walk driver.
BASELINE_SEED = {
    "commit": "18d10b9 (PR-1 tree, pre-rework IR core)",
    "protocol": (
        "points: best of 5 x [build module (untimed); "
        "Compiler(pipeline).compile(module)] per point, captured in "
        "one quiet session on the seed tree; "
        "ours_64_interleaved_median_s: median of 20 interleaved "
        "ABBA best-of-25 runs of the seed against the reworked tree "
        "on the same machine — the drift-controlled 'before' the "
        "headline speedup uses"
    ),
    "ours_64_interleaved_median_s": 0.00497,
    #: Per-window wall-clock ratios (seed / reworked) from interleaved
    #: ABBA rounds: each entry is (sum of 2 seed best-of-25 runs) /
    #: (sum of 2 reworked best-of-25 runs) measured back-to-back in one
    #: load window — the machine's speed drifts by ~±15% across
    #: minutes, so only window-paired ratios are comparable.
    "ours_64_paired_ratios": [
        1.96, 2.10, 2.07, 2.17, 1.97, 2.11, 1.88, 2.00, 2.02,
    ],
    "points": {},  # filled from _SEED_POINTS below
}

#: (pipeline_size) -> (wall_s, ops_visited, pattern_invocations).
_SEED_POINTS = {
    "ours_4": (0.004653, 211, 211), "ours_8": (0.004629, 219, 219),
    "ours_12": (0.005024, 235, 235), "ours_16": (0.004655, 243, 243),
    "ours_20": (0.004743, 231, 231), "ours_24": (0.004767, 243, 243),
    "ours_28": (0.005025, 251, 251), "ours_32": (0.004893, 243, 243),
    "ours_36": (0.004775, 227, 227), "ours_40": (0.004769, 243, 243),
    "ours_44": (0.005041, 251, 251), "ours_48": (0.004770, 243, 243),
    "ours_52": (0.005046, 251, 251), "ours_56": (0.004966, 243, 243),
    "ours_60": (0.004742, 243, 243), "ours_64": (0.004745, 243, 243),
    "mlir_4": (0.003179, 98, 98), "mlir_8": (0.003122, 98, 98),
    "mlir_12": (0.003155, 98, 98), "mlir_16": (0.003160, 98, 98),
    "mlir_20": (0.003163, 98, 98), "mlir_24": (0.003168, 98, 98),
    "mlir_28": (0.003162, 98, 98), "mlir_32": (0.003165, 98, 98),
    "mlir_36": (0.003144, 98, 98), "mlir_40": (0.003200, 98, 98),
    "mlir_44": (0.003172, 98, 98), "mlir_48": (0.003164, 98, 98),
    "mlir_52": (0.003179, 98, 98), "mlir_56": (0.003108, 98, 98),
    "mlir_60": (0.003200, 98, 98), "mlir_64": (0.003183, 98, 98),
}
BASELINE_SEED["points"] = {
    key: {
        "wall_s": wall,
        "ops_visited": visited,
        "pattern_invocations": invoked,
    }
    for key, (wall, visited, invoked) in _SEED_POINTS.items()
}


def measure_point(
    pipeline: str,
    size: int,
    unroll_factor: int | None = None,
    repeats: int = REPEATS,
) -> dict:
    """Best-of-``repeats`` wall clock plus driver counters for one point.

    Wall time covers ``Compiler(...).compile(module)`` — pipeline
    resolution through assembly emission — with the kernel-module build
    excluded.  Counters come from one extra instrumented compile.
    """
    best = float("inf")
    for _ in range(repeats):
        module, _ = kernels.matmul(1, size, size)
        start = time.perf_counter()
        Compiler(pipeline, unroll_factor=unroll_factor).compile(module)
        best = min(best, time.perf_counter() - start)
    module, _ = kernels.matmul(1, size, size)
    compiled = Compiler(
        pipeline, unroll_factor=unroll_factor
    ).compile(module)
    totals = {
        "ops_visited": 0,
        "pattern_invocations": 0,
        "rewrites_applied": 0,
    }
    for _, stats in compiled.pass_stats:
        for key in totals:
            totals[key] += stats[key]
    return {
        "wall_s": round(best, 6),
        **totals,
        "module_ops": sum(1 for _ in compiled.module.walk()),
    }


def run() -> dict:
    """Measure every point and assemble the full JSON document."""
    points = {}
    headline_salvos = []
    for pipeline in PIPELINES:
        for size in GRID:
            points[f"{pipeline}_{size}"] = measure_point(pipeline, size)
        # The headline point is measured once per pipeline sweep (the
        # salvos are spread over the run so one noisy scheduler window
        # cannot distort the best observed wall time).
        headline_salvos.append(
            measure_point("ours", 64, repeats=2 * REPEATS)["wall_s"]
        )
    large = measure_point("ours", 64, unroll_factor=LARGE_UNROLL_FACTOR)
    before = BASELINE_SEED["ours_64_interleaved_median_s"]
    after = min(points["ours_64"]["wall_s"], *headline_salvos)
    points["ours_64"]["wall_s"] = after
    ratios = sorted(BASELINE_SEED["ours_64_paired_ratios"])
    paired_speedup = ratios[len(ratios) // 2]
    unpaired_speedup = round(before / after, 2)
    return {
        "schema": 1,
        "generated_by": "benchmarks/bench_compile_time.py",
        "protocol": {
            "wall_s": (
                f"best of {REPEATS} x Compiler(pipeline)"
                ".compile(matmul(1, size, size)); module build excluded"
            ),
            "counters": (
                "rewrite-driver deltas summed over CompiledKernel"
                ".pass_stats (PassManager instrumentation)"
            ),
        },
        "grid": list(GRID),
        "pipelines": list(PIPELINES),
        "baseline_seed": BASELINE_SEED,
        "current": {
            "points": points,
            "large_unroll": {
                "config": (
                    f"ours, matmul 1x64x64, unroll-and-jam factor "
                    f"{LARGE_UNROLL_FACTOR}"
                ),
                **large,
            },
        },
        "headline": {
            "point": "ours_64",
            "before_wall_s": before,
            "after_wall_s": after,
            # speedup_paired is the robust statistic for the rework
            # itself: the median of window-paired interleaved ratios
            # (seed vs reworked tree measured back-to-back); it is a
            # recorded constant.  speedup_unpaired is recomputed every
            # run (load-sensitive, but it moves when compile time
            # regresses).  The headline takes the *minimum* so a future
            # regression can never hide behind the recorded win.
            "speedup": min(paired_speedup, unpaired_speedup),
            "speedup_paired": paired_speedup,
            "speedup_unpaired": unpaired_speedup,
        },
    }


def main() -> int:
    document = run()
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=False)
        handle.write("\n")
    head = document["headline"]
    print(
        f"ours_64: {head['before_wall_s'] * 1000:.3f} ms -> "
        f"{head['after_wall_s'] * 1000:.3f} ms "
        f"(speedup {head['speedup']}x; paired "
        f"{head['speedup_paired']}x, unpaired "
        f"{head['speedup_unpaired']}x); "
        f"wrote {os.path.relpath(RESULTS_PATH)}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
